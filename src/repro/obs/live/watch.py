"""``repro-watch`` — terminal dashboard over a live (or finished) run.

Tails the JSON snapshot a live run pushes (``repro-experiments run ...
--export out/prom.txt`` refreshes ``out/prom.json`` alongside) or polls
a pull endpoint (``--serve PORT``)::

    repro-watch out/prom.json            # tail the pushed snapshot
    repro-watch out/                     # directory: finds *.json
    repro-watch http://127.0.0.1:9464    # poll /metrics.json
    repro-watch out/prom.json --once     # one frame, no loop

Each frame shows run progress, engine throughput, the live
rebuffering/energy aggregates (count/mean/p50/p95/max straight from
the P²/Welford sketches), the executor worker table with stall flags,
and the most recent SLO alerts.  Exits 0; ``--once`` additionally
exits 3 when the snapshot contains alerts, so scripts can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path
from typing import Any

__all__ = ["main", "render_dashboard", "load_snapshot"]


def load_snapshot(source: str, timeout_s: float = 5.0) -> dict[str, Any]:
    """Read one snapshot from a file path, directory, or HTTP endpoint."""
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/") + "/metrics.json"
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))
    path = Path(source)
    if path.is_dir():
        candidates = sorted(
            (p for p in path.glob("*.json") if p.name != "manifest.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        if not candidates:
            raise FileNotFoundError(f"no JSON snapshot under {path}")
        path = candidates[0]
    return json.loads(path.read_text(encoding="utf-8"))


def _fmt_num(value: Any, digits: int = 3) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.{digits}g}"


def _stat_line(name: str, stats: dict[str, Any]) -> str:
    if not stats or not stats.get("count"):
        return f"  {name:<16} (no samples)"
    parts = [f"n={_fmt_num(stats['count'])}"]
    for key in ("mean", "p50", "p95", "p99", "max"):
        if key in stats:
            parts.append(f"{key}={_fmt_num(stats[key])}")
    return f"  {name:<16} " + "  ".join(parts)


def render_dashboard(snap: dict[str, Any]) -> str:
    """One text frame of the dashboard (pure function of the snapshot)."""
    lines: list[str] = []
    progress = snap.get("progress", {})
    live = snap.get("live", {})
    if progress:
        run_slots = progress.get("run_slots", 0)
        run_total = progress.get("run_n_slots", 0)
        pct = f" ({100.0 * run_slots / run_total:.0f}%)" if run_total else ""
        lines.append(
            f"runs {progress.get('runs_finished', 0)}/{progress.get('runs_started', 0)}"
            f" · current {progress.get('scheduler') or '-'}"
            f" slot {run_slots}/{run_total}{pct}"
            f" · total slots {progress.get('total_slots', 0)}"
            f" · {_fmt_num(live.get('slots_per_s', 0))} slots/s"
        )
    channel_stats = {
        k: v for k, v in live.items() if isinstance(v, dict)
    }
    if channel_stats:
        lines.append("live channels (per-slot, current run):")
        for name in sorted(channel_stats):
            lines.append(_stat_line(name, channel_stats[name]))
    executor = snap.get("executor")
    if executor and executor.get("workers"):
        lines.append(
            f"executor: {executor.get('n_workers', 0)} worker(s), "
            f"{executor.get('n_beats', 0)} heartbeat(s)"
            + (
                f", STALLED: {', '.join(executor['stalled'])}"
                if executor.get("stalled")
                else ""
            )
        )
        for name in sorted(executor["workers"]):
            w = executor["workers"][name]
            flag = " [STALLED]" if w.get("stalled") else ""
            lines.append(
                f"  {name:<12} {w.get('phase', '?'):<10}"
                f" task={_fmt_num(w.get('task', '-'))}"
                f" slots={_fmt_num(w.get('slots_done', 0))}/{_fmt_num(w.get('n_slots', 0))}"
                f" {_fmt_num(w.get('slots_per_s', 0))} slots/s"
                f" age={_fmt_num(w.get('age_s', 0))}s{flag}"
            )
    alerts = snap.get("alerts")
    n_alerts = snap.get("n_alerts", len(alerts) if alerts else 0)
    if alerts:
        lines.append(f"SLO alerts ({n_alerts} total, last {min(len(alerts), 5)}):")
        for alert in alerts[-5:]:
            where = f" slot {alert['slot']}" if "slot" in alert else ""
            ctx = f" [{alert['context']}]" if alert.get("context") else ""
            lines.append(
                f"  ! {alert.get('rule', '?')}: observed "
                f"{_fmt_num(alert.get('observed', float('nan')))}{where}{ctx}"
            )
    elif "alerts" in snap:
        lines.append("SLO alerts: none")
    counters = snap.get("counters", {})
    interesting = [
        name
        for name in ("engine.slots", "executor.heartbeats", "executor.stalls", "slo.alerts")
        if name in counters
    ]
    if interesting:
        lines.append(
            "counters: "
            + "  ".join(f"{n}={_fmt_num(counters[n])}" for n in interesting)
        )
    if not lines:
        lines.append("(snapshot carries no live telemetry yet)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-watch",
        description="Terminal dashboard over a live run's telemetry "
        "snapshot (file push or HTTP pull endpoint).",
    )
    add_version_argument(parser)
    parser.add_argument(
        "source",
        help="snapshot JSON path, run directory, or http://host:port endpoint",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period, seconds"
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (exit code 3 if alerts fired)",
    )
    parser.add_argument(
        "--for",
        dest="duration_s",
        type=float,
        default=None,
        help="stop tailing after this many seconds (default: until Ctrl-C)",
    )
    args = parser.parse_args(argv)

    if args.once:
        try:
            snap = load_snapshot(args.source)
        except Exception as exc:
            print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
            return 2
        print(render_dashboard(snap))
        return 3 if snap.get("n_alerts") else 0

    deadline = (
        time.monotonic() + args.duration_s if args.duration_s is not None else None
    )
    misses = 0
    try:
        while True:
            try:
                snap = load_snapshot(args.source)
            except Exception as exc:
                misses += 1
                if misses in (1, 10):
                    print(f"[waiting for {args.source}: {exc}]", file=sys.stderr)
            else:
                misses = 0
                stamp = time.strftime("%H:%M:%S")
                frame = render_dashboard(snap)
                print(f"── repro-watch {stamp} · {args.source} " + "─" * 12)
                print(frame, flush=True)
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
