"""Metrics export: Prometheus text, JSON snapshots, file push, HTTP pull.

Three surfaces over one snapshot shape (the dict produced by
:meth:`repro.obs.live.plane.LiveTelemetry.snapshot`, a superset of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`):

* :func:`prometheus_text` — renders every numeric metric (counters,
  numeric gauges, histogram summaries, live aggregates, worker table)
  in the Prometheus text exposition format; non-numeric gauges become
  ``*_info`` label metrics;
* :class:`SnapshotExporter` — time-gated atomic file push of both the
  Prometheus text and the JSON snapshot (what ``repro-watch`` tails);
* :class:`MetricsServer` — a stdlib :mod:`http.server` pull endpoint
  serving ``/metrics`` (Prometheus) and ``/metrics.json`` on a daemon
  thread.

Every numeric metric in a ``metrics.json`` snapshot appears in the
Prometheus rendering with a matching value (round-trip pinned by
``tests/obs/test_live_exporter.py``).
"""

from __future__ import annotations

import json
import logging
import math
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "prometheus_name",
    "prometheus_text",
    "SnapshotExporter",
    "MetricsServer",
]

log = logging.getLogger("repro.obs.live.exporter")

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """``engine.slots`` -> ``repro_engine_slots`` (Prometheus-safe)."""
    safe = _NAME_RE.sub("_", name).strip("_")
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{prefix}_{safe}" if prefix else safe


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _numeric_leaves(node: Any) -> bool:
    """True when ``node`` is a number or a (nested) list of numbers."""
    if isinstance(node, bool):
        return False
    if isinstance(node, (int, float)):
        return True
    if isinstance(node, (list, tuple)):
        return all(_numeric_leaves(v) for v in node)
    return False


def prometheus_text(snapshot: dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics/live snapshot in the Prometheus text format."""
    lines: list[str] = []

    def emit(name: str, kind: str, value: float, labels: str = "") -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_fmt(value)}")

    for name, value in sorted(snapshot.get("counters", {}).items()):
        emit(prometheus_name(name, prefix) + "_total", "counter", value)

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        pname = prometheus_name(name, prefix)
        if isinstance(value, (list, tuple)):
            lines.append(f"# TYPE {pname} gauge")
            for i, item in enumerate(value):
                lines.append(f'{pname}{{index="{i}"}} {_fmt(item)}')
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            emit(pname, "gauge", value)

    for name, value in sorted(snapshot.get("info", {}).items()):
        pname = prometheus_name(name, prefix) + "_info"
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f'{pname}{{value="{_escape_label(value)}"}} 1')

    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        pname = prometheus_name(name, prefix)
        lines.append(f"# TYPE {pname} summary")
        for q_key in ("p50", "p95"):
            if q_key in summary:
                q = float(q_key[1:]) / 100.0
                lines.append(f'{pname}{{quantile="{q}"}} {_fmt(summary[q_key])}')
        if "total" in summary:
            lines.append(f"{pname}_sum {_fmt(summary['total'])}")
        lines.append(f"{pname}_count {_fmt(summary.get('count', 0))}")
        for stat_key in ("mean", "min", "max"):
            if stat_key in summary:
                emit(f"{pname}_{stat_key}", "gauge", summary[stat_key])

    for name, stats in sorted(snapshot.get("live", {}).items()):
        pname = prometheus_name(f"live.{name}", prefix)
        if isinstance(stats, dict):
            lines.append(f"# TYPE {pname} summary")
            for key, value in sorted(stats.items()):
                if key.startswith("p") and key[1:].isdigit():
                    q = float(key[1:]) / 100.0
                    lines.append(f'{pname}{{quantile="{q}"}} {_fmt(value)}')
                elif key == "count":
                    lines.append(f"{pname}_count {_fmt(value)}")
                else:
                    emit(f"{pname}_{key}", "gauge", value)
        elif isinstance(stats, (int, float)) and not isinstance(stats, bool):
            emit(pname, "gauge", stats)

    executor = snapshot.get("executor")
    if executor:
        emit(prometheus_name("executor.workers", prefix), "gauge", executor.get("n_workers", 0))
        emit(
            prometheus_name("executor.stalled_workers", prefix),
            "gauge",
            len(executor.get("stalled", [])),
        )
        for worker, entry in sorted(executor.get("workers", {}).items()):
            labels = f'{{worker="{_escape_label(worker)}"}}'
            for key, kind in (("slots_done", "gauge"), ("slots_per_s", "gauge")):
                value = entry.get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    pname = prometheus_name(f"executor.worker.{key}", prefix)
                    lines.append(f"# TYPE {pname} gauge")
                    lines.append(f"{pname}{labels} {_fmt(value)}")

    alerts = snapshot.get("alerts")
    if alerts is not None:
        emit(
            prometheus_name("slo.alerts.recent", prefix),
            "gauge",
            len(alerts),
        )
    return "\n".join(lines) + "\n"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class SnapshotExporter:
    """Pushes snapshots to disk: Prometheus text + JSON, atomically.

    Parameters
    ----------
    prom_path:
        Target for the Prometheus text rendering (``None`` skips it).
    json_path:
        Target for the raw JSON snapshot; defaults to ``prom_path``
        with a ``.json`` suffix, so ``--export prom.txt`` leaves
        ``prom.json`` next to it for ``repro-watch``.
    every_s:
        Minimum seconds between pushes via :meth:`maybe_push`
        (calling :meth:`push` directly ignores the gate — run end does).
    """

    def __init__(
        self,
        prom_path: str | Path | None = None,
        json_path: str | Path | None = None,
        every_s: float = 1.0,
    ):
        self.prom_path = Path(prom_path) if prom_path is not None else None
        if json_path is None and self.prom_path is not None:
            json_path = self.prom_path.with_suffix(".json")
        self.json_path = Path(json_path) if json_path is not None else None
        self.every_s = float(every_s)
        self._last_push = float("-inf")
        self.n_pushes = 0
        for path in (self.prom_path, self.json_path):
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)

    def maybe_push(self, snapshot: dict[str, Any]) -> bool:
        if time.monotonic() - self._last_push < self.every_s:
            return False
        self.push(snapshot)
        return True

    def push(self, snapshot: dict[str, Any]) -> None:
        self._last_push = time.monotonic()
        try:
            if self.prom_path is not None:
                _atomic_write(self.prom_path, prometheus_text(snapshot))
            if self.json_path is not None:
                _atomic_write(
                    self.json_path, json.dumps(snapshot, default=_json_default) + "\n"
                )
            self.n_pushes += 1
        except OSError as exc:  # disk full / perms: degrade, don't crash runs
            log.warning("metrics export to %s failed: %s", self.prom_path, exc)


def _json_default(value: Any) -> Any:
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.generic):
            return value.item()
    except ImportError:  # pragma: no cover
        pass
    return repr(value)


class MetricsServer:
    """Stdlib HTTP pull endpoint on a daemon thread.

    ``GET /metrics`` serves the Prometheus rendering, ``GET
    /metrics.json`` (or ``/``) the JSON snapshot, both computed from
    ``snapshot_fn()`` at request time.  ``port=0`` binds an ephemeral
    port (read :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 9464,
    ):
        self.snapshot_fn = snapshot_fn
        self.host = host
        self.port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsServer":
        snapshot_fn = self.snapshot_fn

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                try:
                    snap = snapshot_fn()
                    if self.path.rstrip("/") in ("", "/metrics.json".rstrip("/")):
                        body = json.dumps(snap, default=_json_default).encode()
                        ctype = "application/json"
                    elif self.path == "/metrics":
                        body = prometheus_text(snap).encode()
                        ctype = "text/plain; version=0.0.4"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # snapshot raced a shutdown
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # keep stderr clean
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        log.info("metrics endpoint listening on http://%s:%d/metrics", self.host, self.port)
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
