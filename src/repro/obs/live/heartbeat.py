"""Executor worker health: heartbeat emission and stall detection.

Worker processes (and the in-process engine, when asked) emit small
heartbeat dicts over a multiprocessing queue::

    {"worker": "w-1234", "ts": <monotonic>, "phase": "slots",
     "task": 3, "slots_done": 512, "n_slots": 4000, "slots_per_s": 812.5,
     "stats": {"rebuffer_s": {...}, "slot_energy_mj": {...}}}

The parent's :class:`HeartbeatMonitor` drains the queue on a daemon
thread, keeps a per-worker table (last beat, progress, rate), counts
beats into the metrics registry, and flags **stragglers**: a worker
mid-task that has not beaten for ``stall_after_s`` fires one
``executor.stall`` trace event + ``executor.stalls`` counter increment
(cleared when the worker resumes).  The table is exposed through
:meth:`HeartbeatMonitor.snapshot` for the exporter and the
``repro-watch`` dashboard.

Emission is strictly fire-and-forget: a full or broken queue drops the
beat rather than ever blocking or failing the simulation.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Any

__all__ = ["HeartbeatEmitter", "HeartbeatMonitor"]

log = logging.getLogger("repro.obs.live.heartbeat")


class HeartbeatEmitter:
    """Worker-side heartbeat source (picklable-queue fed, time-gated).

    ``beat(...)`` sends immediately; ``maybe_beat(...)`` sends at most
    once per ``every_s`` and is the call sites' per-slot entry point.
    """

    __slots__ = ("queue", "worker", "every_s", "task", "_last_ts")

    def __init__(self, queue, worker: str | None = None, every_s: float = 1.0):
        self.queue = queue
        self.worker = worker if worker is not None else f"w-{os.getpid()}"
        self.every_s = float(every_s)
        self.task: int | None = None
        self._last_ts = float("-inf")

    def beat(self, phase: str, **fields: Any) -> None:
        """Send one heartbeat now (never blocks, never raises)."""
        now = time.monotonic()
        self._last_ts = now
        record = {"worker": self.worker, "ts": now, "phase": phase}
        if self.task is not None:
            record["task"] = self.task
        record.update(fields)
        try:
            self.queue.put_nowait(record)
        except Exception:  # full/closed queue: drop, never block the engine
            pass

    def due(self, now: float | None = None) -> bool:
        """Whether ``every_s`` has elapsed since the last beat.

        Call sites check this *before* assembling beat payloads so a
        gated beat costs one comparison, not a stats snapshot.
        """
        if now is None:
            now = time.monotonic()
        return now - self._last_ts >= self.every_s

    def maybe_beat(self, phase: str, **fields: Any) -> bool:
        """Send a heartbeat if ``every_s`` has elapsed since the last one."""
        if not self.due():
            return False
        self.beat(phase, **fields)
        return True


class HeartbeatMonitor:
    """Parent-side drain thread: worker table, rates, stall detection.

    Parameters
    ----------
    queue:
        The queue the emitters feed (a ``multiprocessing.Manager``
        queue crosses the ``ProcessPoolExecutor`` pickling boundary).
    stall_after_s:
        A worker mid-task with no beat for this long is flagged as
        stalled (once per stall; recovery re-arms the flag).
    metrics / tracer:
        Optional sinks.  Counters are pre-created at construction so
        the drain thread never mutates the registry's name table
        concurrently with the main thread.
    """

    def __init__(
        self,
        queue,
        stall_after_s: float = 30.0,
        metrics=None,
        tracer=None,
        poll_s: float = 0.2,
    ):
        self.queue = queue
        self.stall_after_s = float(stall_after_s)
        self.poll_s = float(poll_s)
        self.tracer = tracer
        self._beats = None
        self._stalls = None
        if metrics is not None:
            self._beats = metrics.counter("executor.heartbeats")
            self._stalls = metrics.counter("executor.stalls")
        self.workers: dict[str, dict[str, Any]] = {}
        self.n_beats = 0
        self.stalled: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "HeartbeatMonitor":
        self._thread = threading.Thread(
            target=self._drain, name="repro-heartbeat-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._drain_pending()

    def __enter__(self) -> "HeartbeatMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- draining -----------------------------------------------------

    def _drain(self) -> None:
        while not self._stop.is_set():
            self._drain_pending(block_s=self.poll_s)
            self._check_stalls()

    def _drain_pending(self, block_s: float | None = None) -> None:
        import queue as queue_mod

        while True:
            try:
                if block_s is not None:
                    record = self.queue.get(timeout=block_s)
                    block_s = None  # only the first get blocks
                else:
                    record = self.queue.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                return
            self._ingest(record)

    #: Per-task progress fields cleared when a worker moves to a new
    #: task — carrying them over would show the *previous* task's
    #: progress/rate until its first progress beat arrives.
    _TASK_FIELDS = ("slots_done", "n_slots", "slots_per_s", "stats", "scheduler")

    def _ingest(self, record: dict[str, Any]) -> None:
        worker = str(record.get("worker", "?"))
        resumed = False
        with self._lock:
            entry = self.workers.setdefault(worker, {"worker": worker})
            if "task" in record and record["task"] != entry.get("task"):
                for key in self._TASK_FIELDS:
                    entry.pop(key, None)
            entry.update(record)
            entry["seen_ts"] = time.monotonic()
            self.n_beats += 1
            if worker in self.stalled:
                self.stalled.discard(worker)
                resumed = True
        # Emit outside the lock: a slow or blocking tracer must never
        # stall the drain thread (and, transitively, every snapshot()
        # caller waiting on the lock).
        if resumed:
            log.info("worker %s resumed after stall", worker)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit("executor.resume", worker=worker)
        if self._beats is not None:
            self._beats.inc()

    def _check_stalls(self) -> None:
        now = time.monotonic()
        stalls: list[dict[str, Any]] = []
        with self._lock:
            for worker, entry in self.workers.items():
                if entry.get("phase") in ("run.end", "idle", "retired"):
                    continue  # between tasks (or gone); silence is fine
                age = now - entry.get("seen_ts", now)
                if age < self.stall_after_s or worker in self.stalled:
                    continue
                self.stalled.add(worker)
                stalls.append(
                    {
                        "worker": worker,
                        "silent_s": age,
                        "task": entry.get("task"),
                        "slots_done": entry.get("slots_done"),
                        "n_slots": entry.get("n_slots"),
                    }
                )
        # Counter increments and tracer emission happen after the lock
        # is released (see _ingest for why).
        for info in stalls:
            log.warning(
                "worker %s stalled: no heartbeat for %.1fs "
                "(task %s, %s/%s slots)",
                info["worker"],
                info["silent_s"],
                info["task"],
                info["slots_done"],
                info["n_slots"],
            )
            if self._stalls is not None:
                self._stalls.inc()
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    "executor.stall",
                    worker=info["worker"],
                    silent_s=info["silent_s"],
                    task=info["task"],
                    slots_done=info["slots_done"],
                )

    def retire_workers(self, reason: str = "pool-broken") -> list[str]:
        """Mark every known worker retired (e.g. after the process pool
        broke): phase becomes ``"retired"``, stall flags clear, and the
        stall detector and rate aggregate skip the entries from now on.
        The rows stay in :meth:`snapshot` so dashboards show what
        happened instead of a forever-stalled ghost table."""
        with self._lock:
            retired = sorted(self.workers)
            for entry in self.workers.values():
                entry["phase"] = "retired"
                entry["retired_reason"] = reason
            self.stalled.clear()
        if retired:
            log.info("retired %d worker entr%s (%s)",
                     len(retired), "y" if len(retired) == 1 else "ies", reason)
        return retired

    # -- views --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Worker table view for the exporter / dashboard."""
        now = time.monotonic()
        with self._lock:
            workers = {}
            for name, entry in self.workers.items():
                view = {
                    k: v
                    for k, v in entry.items()
                    if k not in ("ts", "seen_ts")
                }
                view["age_s"] = round(now - entry.get("seen_ts", now), 3)
                view["stalled"] = name in self.stalled
                workers[name] = view
            return {
                "n_beats": self.n_beats,
                "n_workers": len(workers),
                "stalled": sorted(self.stalled),
                "workers": workers,
            }

    def slots_per_s(self) -> float:
        """Aggregate throughput across workers (0 when unknown).

        Stalled and retired workers are excluded — their last-known
        rate describes a worker that is no longer making progress, and
        counting it would keep a dead worker's throughput in the
        aggregate forever.
        """
        with self._lock:
            return float(
                sum(
                    e.get("slots_per_s", 0.0) or 0.0
                    for name, e in self.workers.items()
                    if e.get("phase") not in ("run.end", "idle", "retired")
                    and name not in self.stalled
                )
            )
