"""The live telemetry plane: one object tying aggregators, watchdog,
heartbeats, and export together.

A :class:`LiveTelemetry` rides the :class:`~repro.obs.instrument.Instrumentation`
bundle as its optional fourth facet (``instr.live``).  The engine's
slot loop calls :meth:`observe_slot` once per slot with a handful of
scalars; everything downstream — P²/Welford aggregation, SLO rule
evaluation, heartbeat emission, snapshot export — hangs off that one
call, time- or slot-count-gated so the overhead stays inside the <3%
budget benched in ``benchmarks/bench_kernels.py``.

Live telemetry is strictly observational (bit-identical result grids
with it on or off — ``tests/integration/test_live_equivalence.py``)
with one sanctioned exception: a watchdog rule with ``action="abort"``
raises :class:`~repro.errors.SloViolation`, and the engine's shutdown
path turns that into a flushed trace ending in ``run.abort``.

Channels fed by the engine (per-slot, cell-aggregated):

==================  ====================================================
``rebuffer_s``      summed rebuffering accrued this slot (Eq. 8)
``slot_energy_mj``  transmission + tail energy this slot (Eqs. 3-5)
``delivered_kb``    media shipped this slot
``buffer_s``        mean client buffer level
``active_users``    resident population, sampled at each watch tick
``outage_slots``    injected-fault slots per watch block (repro.faults)
``slots_per_s``     engine throughput (wall-clock EWMA; scalar channel)
``worker_stall_s``  max heartbeat silence across pool workers (parent)
==================  ====================================================

``outage_slots`` counts the slots of each observation block with any
injected fault window active (signal blackout, capacity outage, flow
stall), so SLO rules can react to degraded-network conditions —
``sum(outage_slots) < 500`` bounds total injected downtime, and
``max(outage_slots) < 64`` fires when a whole watch block is dark.
Healthy runs feed constant zeros.

Determinism note: aggregates and rule evaluations depend only on the
slot stream (reset per run, evaluated every ``watch_every`` slots), so
alert counts are reproducible run-over-run; only ``slots_per_s`` and
``worker_stall_s`` are wall-clock-derived, and rules over those are
inherently timing-dependent.
"""

from __future__ import annotations

import logging
import time
from typing import Any

from repro.obs.live.aggregators import Ewma, StreamStat
from repro.obs.live.exporter import MetricsServer, SnapshotExporter
from repro.obs.live.heartbeat import HeartbeatEmitter, HeartbeatMonitor
from repro.obs.live.slo import SloRule, SloWatchdog

__all__ = ["LiveTelemetry"]

log = logging.getLogger("repro.obs.live")

#: Channels reset at every run boundary (per-run streaming stats).
#: ``active_users`` is fed once per watch tick (the resident session
#: count at the block's last slot) rather than per slot — it tracks the
#: dynamic engine's churning population for SLO rules like
#: ``max(active_users) < 32``.
_RUN_CHANNELS = (
    "rebuffer_s",
    "slot_energy_mj",
    "delivered_kb",
    "buffer_s",
    "active_users",
    "outage_slots",
)
#: Channels carrying P² quantile sketches by default — the two the
#: paper's constraints bound (rebuffering Omega, per-slot energy Phi).
#: Sketches are the only per-sample Python cost in the batched tick
#: path, so the other channels keep vectorized min/max/mean/std only;
#: a pNN SLO rule on any channel adds the sketch it needs.
_SKETCHED_CHANNELS = ("rebuffer_s", "slot_energy_mj")


class LiveTelemetry:
    """Streaming aggregation + watchdog + heartbeat + export, per slot.

    Parameters
    ----------
    rules:
        SLO rule strings / :class:`~repro.obs.live.slo.SloRule` objects
        (see :mod:`repro.obs.live.slo` for the grammar).
    action:
        ``"warn"`` or ``"abort"`` — what a firing rule does.
    watch_every:
        Evaluate the watchdog (and consider exporting/heartbeating)
        every N slots.  Aggregators update every slot regardless.
    quantiles:
        P² sketches tracked per run channel.
    heartbeat:
        Optional :class:`~repro.obs.live.heartbeat.HeartbeatEmitter`
        (attached by the run executor inside worker processes).
    exporter:
        Optional :class:`~repro.obs.live.exporter.SnapshotExporter`
        for periodic file push.
    server:
        Optional :class:`~repro.obs.live.exporter.MetricsServer`; the
        plane only supplies its ``snapshot_fn`` — lifecycle belongs to
        the caller (the CLI).
    """

    def __init__(
        self,
        rules: tuple[str | SloRule, ...] = (),
        action: str = "warn",
        watch_every: int = 64,
        quantiles: tuple[float, ...] = (0.5, 0.95),
        heartbeat: HeartbeatEmitter | None = None,
        exporter: SnapshotExporter | None = None,
        server: MetricsServer | None = None,
    ):
        self.watchdog = SloWatchdog(rules, action=action) if rules else None
        self.watch_every = max(int(watch_every), 1)
        self.quantiles = tuple(quantiles)
        # Per-channel sketch sets: the default quantiles on the two
        # bound channels, plus whatever quantiles the SLO rules demand
        # on any run channel (a "p99(delivered_kb)" rule sketches p99
        # on delivered_kb; without a rule that channel carries none).
        self._channel_quantiles: dict[str, tuple[float, ...]] = {
            name: (self.quantiles if name in _SKETCHED_CHANNELS else ())
            for name in _RUN_CHANNELS
        }
        if self.watchdog is not None:
            for rule in self.watchdog.rules:
                if rule.channel in self._channel_quantiles and rule.agg.startswith(
                    "p"
                ) and rule.agg[1:].isdigit():
                    q = float(rule.agg[1:]) / 100.0
                    have = self._channel_quantiles[rule.channel]
                    if q not in have:
                        self._channel_quantiles[rule.channel] = have + (q,)
        self.heartbeat = heartbeat
        self.exporter = exporter
        self.server = server
        self.monitor: HeartbeatMonitor | None = None
        self.metrics = None
        self.tracer = None
        self.stats: dict[str, StreamStat] = {}
        self.slots_per_s = Ewma(halflife_s=3.0)
        self.total_slots = 0
        self.runs_started = 0
        self.runs_finished = 0
        self._run_name: str | None = None
        self._run_slots = 0
        self._run_n_slots = 0
        self._last_tick = time.monotonic()
        self._reset_run_stats()

    # -- wiring -------------------------------------------------------

    def bind(self, metrics, tracer) -> None:
        """Attach the sibling facets of the owning Instrumentation."""
        self.metrics = metrics
        self.tracer = tracer
        if self.watchdog is not None:
            self.watchdog.bind(metrics, tracer)

    def attach_monitor(self, monitor: HeartbeatMonitor | None) -> None:
        """Give the plane a parent-side heartbeat monitor to report on."""
        self.monitor = monitor

    def spec(self) -> dict[str, Any]:
        """Picklable config for rebuilding a worker-side plane."""
        out: dict[str, Any] = {
            "watch_every": self.watch_every,
            "quantiles": self.quantiles,
        }
        if self.watchdog is not None:
            out.update(self.watchdog.spec())
        return out

    @classmethod
    def from_spec(
        cls, spec: dict[str, Any], heartbeat: HeartbeatEmitter | None = None
    ) -> "LiveTelemetry":
        return cls(
            rules=tuple(spec.get("rules", ())),
            action=spec.get("action", "warn"),
            watch_every=spec.get("watch_every", 64),
            quantiles=tuple(spec.get("quantiles", (0.5, 0.95, 0.99))),
            heartbeat=heartbeat,
        )

    def _reset_run_stats(self) -> None:
        for name in _RUN_CHANNELS:
            self.stats[name] = StreamStat(name, self._channel_quantiles[name])

    # -- engine hooks -------------------------------------------------

    def begin_run(self, scheduler: str, n_slots: int, n_users: int) -> None:
        """Engine entry: reset per-run aggregates, announce the run.

        Per-run reset keeps aggregates (and therefore SLO alert counts)
        identical whether a batch runs serially through one plane or
        fans out to per-run worker planes.
        """
        self._reset_run_stats()
        if self.watchdog is not None:
            self.watchdog.rearm()
        self._run_name = scheduler
        self._run_slots = 0
        self._run_n_slots = int(n_slots)
        self.runs_started += 1
        self._last_tick = time.monotonic()
        if self.heartbeat is not None:
            self.heartbeat.beat(
                "run.start", scheduler=scheduler, n_slots=n_slots, n_users=n_users
            )

    def observe_slot(
        self,
        slot: int,
        rebuffer_s: float,
        energy_mj: float,
        delivered_kb: float,
        mean_buffer_s: float,
        active_users: int = 0,
        outage_slots: int = 0,
    ) -> None:
        """One engine slot's cell-level aggregates (per-slot entry point)."""
        stats = self.stats
        stats["rebuffer_s"].add(rebuffer_s)
        stats["slot_energy_mj"].add(energy_mj)
        stats["delivered_kb"].add(delivered_kb)
        stats["buffer_s"].add(mean_buffer_s)
        self.total_slots += 1
        self._run_slots += 1
        if self._run_slots % self.watch_every:
            return
        self._tick(slot, self.watch_every, active_users, outage_slots)

    def observe_block(
        self,
        slot: int,
        rebuffer_s,
        energy_mj,
        delivered_kb,
        mean_buffer_s,
        active_users: int = 0,
        outage_slots: int = 0,
    ) -> None:
        """A block of consecutive slots, vectorized (the engine's path).

        The four array arguments hold one cell-aggregated value per
        slot; ``slot`` is the index of the block's last slot.  The
        aggregates are identical to per-slot :meth:`observe_slot`
        calls, but the whole block costs O(1) vectorized Python per
        channel plus the (sequential) P² sketch feeds — this is what
        keeps the live plane inside its <3% overhead budget.  One
        watchdog/heartbeat/export tick runs per block.
        """
        stats = self.stats
        stats["rebuffer_s"].add_array(rebuffer_s)
        stats["slot_energy_mj"].add_array(energy_mj)
        stats["delivered_kb"].add_array(delivered_kb)
        stats["buffer_s"].add_array(mean_buffer_s)
        n = len(rebuffer_s)
        self.total_slots += n
        self._run_slots += n
        self._tick(slot, n, active_users, outage_slots)

    def _tick(
        self, slot: int, n_slots: int, active_users: int, outage_slots: int = 0
    ) -> None:
        """Watchdog + heartbeat + export, once per observation block."""
        self.stats["active_users"].add(float(active_users))
        self.stats["outage_slots"].add(float(outage_slots))
        now = time.monotonic()
        dt = now - self._last_tick
        self._last_tick = now
        if dt > 0:
            self.slots_per_s.update(n_slots / dt, dt)
        if self.heartbeat is not None and self.heartbeat.due(now):
            self.heartbeat.beat(
                "slots",
                scheduler=self._run_name,
                slots_done=self._run_slots,
                n_slots=self._run_n_slots,
                slots_per_s=round(self.slots_per_s.value, 2),
                active_users=int(active_users),
                stats=self.run_stats(),
            )
        if self.watchdog is not None:
            self.watchdog.evaluate(self.resolve, slot=slot, context=self._run_name)
        if self.exporter is not None:
            self.exporter.maybe_push(self.snapshot())

    def end_run(self) -> None:
        """Engine exit (clean): final watchdog pass + heartbeat/export."""
        self.runs_finished += 1
        if self.watchdog is not None:
            self.watchdog.evaluate(
                self.resolve, slot=self._run_slots - 1, context=self._run_name
            )
        if self.heartbeat is not None:
            self.heartbeat.beat(
                "run.end",
                scheduler=self._run_name,
                slots_done=self._run_slots,
                n_slots=self._run_n_slots,
                stats=self.run_stats(),
            )
        if self.exporter is not None:
            self.exporter.maybe_push(self.snapshot())

    def abort_run(self, error: str) -> None:
        """Engine exit (crashed): flush what we have, mark the abort."""
        if self.heartbeat is not None:
            self.heartbeat.beat(
                "run.abort", scheduler=self._run_name, error=error,
                slots_done=self._run_slots,
            )
        if self.exporter is not None:
            self.exporter.push(self.snapshot())

    # -- rule resolution ----------------------------------------------

    def resolve(self, agg: str, channel: str) -> float | None:
        """Resolver handed to the watchdog: live channels, then metrics."""
        stat = self.stats.get(channel)
        if stat is not None:
            if not stat.count:
                return None
            return stat.aggregate(agg)
        if channel == "slots_per_s":
            return self.slots_per_s.value if self.slots_per_s.initialized else None
        if channel == "worker_stall_s":
            if self.monitor is None:
                return None
            snap = self.monitor.snapshot()
            ages = [
                w.get("age_s", 0.0)
                for w in snap["workers"].values()
                if w.get("phase") not in ("run.end", "idle")
            ]
            return max(ages) if ages else 0.0
        if self.metrics is not None and channel in self.metrics:
            # Registry fallback: counters / numeric gauges by exact name.
            snap = self.metrics.snapshot()
            for section in ("counters", "gauges"):
                value = snap.get(section, {}).get(channel)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return float(value)
        return None

    # -- views --------------------------------------------------------

    def run_stats(self) -> dict[str, dict[str, float]]:
        """Small per-run stats dict (rides inside heartbeats)."""
        return {name: self.stats[name].snapshot() for name in _RUN_CHANNELS}

    def snapshot(self) -> dict[str, Any]:
        """The full exportable view: registry + live + workers + alerts."""
        out: dict[str, Any] = (
            self.metrics.snapshot() if self.metrics is not None else {}
        )
        live: dict[str, Any] = {name: stat.snapshot() for name, stat in self.stats.items()}
        live["slots_per_s"] = (
            round(self.slots_per_s.value, 3) if self.slots_per_s.initialized else 0.0
        )
        out["live"] = live
        out["progress"] = {
            "runs_started": self.runs_started,
            "runs_finished": self.runs_finished,
            "total_slots": self.total_slots,
            "run_slots": self._run_slots,
            "run_n_slots": self._run_n_slots,
            "scheduler": self._run_name,
        }
        if self.monitor is not None:
            out["executor"] = self.monitor.snapshot()
        if self.watchdog is not None:
            out["alerts"] = list(self.watchdog.alerts)
            out["n_alerts"] = self.watchdog.n_alerts
        return out

    def close(self) -> None:
        """Final export push (server/monitor lifecycles belong to callers)."""
        if self.exporter is not None:
            self.exporter.push(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover
        rules = len(self.watchdog) if self.watchdog is not None else 0
        return (
            f"<LiveTelemetry slots={self.total_slots} rules={rules} "
            f"heartbeat={self.heartbeat is not None} "
            f"exporter={self.exporter is not None}>"
        )
