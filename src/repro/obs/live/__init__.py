"""``repro.obs.live`` — the live telemetry plane.

Everything PR 1-2's post-hoc observability shows *after* a run, this
package surfaces *while the run executes*, with bounded overhead:

* :mod:`~repro.obs.live.aggregators` — allocation-light online stats
  (EWMA, Welford, P² streaming quantiles, per-channel composites);
* :mod:`~repro.obs.live.slo` — declarative SLO rules
  (``p95(rebuffer_s) < 0.5``) evaluated online, warn or abort;
* :mod:`~repro.obs.live.heartbeat` — executor worker heartbeats +
  straggler/stall detection;
* :mod:`~repro.obs.live.exporter` — Prometheus-text / JSON snapshot
  export (atomic file push + stdlib HTTP pull endpoint);
* :mod:`~repro.obs.live.plane` — :class:`LiveTelemetry`, the composite
  that rides :class:`~repro.obs.instrument.Instrumentation` as its
  fourth facet and receives one call per engine slot;
* :mod:`~repro.obs.live.watch` — the ``repro-watch`` terminal
  dashboard tailing a pushed snapshot or polling a pull endpoint;
* :mod:`~repro.obs.live.logs` — :func:`logging_setup` for the
  ``repro.*`` logger hierarchy (``$REPRO_LOG_LEVEL``).

Quick taste::

    from repro.obs import Instrumentation
    from repro.obs.live import LiveTelemetry, SnapshotExporter

    live = LiveTelemetry(
        rules=("p95(rebuffer_s) < 0.5", "max(slot_energy_mj) <= 150"),
        exporter=SnapshotExporter("out/prom.txt"),
    )
    instr = Instrumentation(live=live)
    run_scheduler(cfg, EMAScheduler(cfg.n_users), instrumentation=instr)
    # out/prom.txt + out/prom.json refresh while the run executes;
    # violations emit "slo.alert" trace events and tick slo.alerts.
"""

from repro.obs.live.aggregators import Ewma, P2Quantile, StreamStat, Welford
from repro.obs.live.exporter import (
    MetricsServer,
    SnapshotExporter,
    prometheus_name,
    prometheus_text,
)
from repro.obs.live.heartbeat import HeartbeatEmitter, HeartbeatMonitor
from repro.obs.live.logs import LOG_LEVEL_ENV, logging_setup
from repro.obs.live.plane import LiveTelemetry
from repro.obs.live.slo import SloRule, SloWatchdog, parse_rule, rules_from_spec

__all__ = [
    "Ewma",
    "Welford",
    "P2Quantile",
    "StreamStat",
    "SloRule",
    "SloWatchdog",
    "parse_rule",
    "rules_from_spec",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "prometheus_name",
    "prometheus_text",
    "SnapshotExporter",
    "MetricsServer",
    "LiveTelemetry",
    "logging_setup",
    "LOG_LEVEL_ENV",
]
