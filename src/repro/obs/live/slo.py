"""Declarative SLO rules evaluated online against the live aggregators.

A rule is a one-line invariant over a telemetry channel::

    p95(rebuffer_s) < 0.5        # paper's rebuffering bound Omega
    max(slot_energy_mj) <= 120   # per-slot energy bound Phi (+ tol)
    worker_stall_s <= 30
    mean(rebuffer_s) < 0.1

Grammar: ``[agg(]channel[)] OP number[unit]`` where ``agg`` is one of
``p50``/``p90``/``p95``/``p99`` (any ``pNN``), ``mean``, ``std``,
``min``, ``max``, ``last``, ``count``; a bare channel means
``last(channel)``.  A trailing unit suffix (``s``, ``mj``, ``kb``) on
the number is cosmetic and stripped.

The :class:`SloWatchdog` evaluates its rules against a *resolver*
(``resolver(agg, channel) -> float | None``; ``None`` = no data yet,
rule skipped).  Alerts are edge-triggered: one ``slo.alert`` event +
counter increment when a rule transitions into violation, one
``slo.clear`` when it recovers.  ``action="abort"`` raises
:class:`~repro.errors.SloViolation` after emitting the alert, which
aborts the run through the engine's shutdown path (the trace still
ends with ``run.abort`` and flushes).
"""

from __future__ import annotations

import logging
import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigurationError, SloViolation

__all__ = ["SloRule", "parse_rule", "SloWatchdog"]

log = logging.getLogger("repro.obs.live.slo")

_RULE_RE = re.compile(
    r"""^\s*
    (?:(?P<agg>[A-Za-z_]\w*)\s*\(\s*(?P<channel>[\w.]+)\s*\)   # agg(channel)
      |(?P<bare>[\w.]+))                                        # bare channel
    \s*(?P<op><=|>=|==|!=|<|>)\s*
    (?P<value>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)
    \s*(?P<unit>[A-Za-z_%]*)\s*$""",
    re.VERBOSE,
)

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_KNOWN_AGGS = ("mean", "std", "min", "max", "last", "value", "count", "sum")


@dataclass(frozen=True)
class SloRule:
    """One parsed rule: ``agg(channel) op threshold``.

    The rule *holds* while the comparison is true; an alert fires on
    the transition to false.
    """

    agg: str
    channel: str
    op: str
    threshold: float
    text: str

    @property
    def key(self) -> str:
        """Stable identifier used in metric names and alert events."""
        return f"{self.agg}({self.channel})"

    def holds(self, observed: float) -> bool:
        return _OPS[self.op](observed, self.threshold)


def parse_rule(text: str) -> SloRule:
    """Parse one rule string (see module docstring for the grammar)."""
    m = _RULE_RE.match(text)
    if m is None:
        raise ConfigurationError(
            f"unparseable SLO rule {text!r} (expected 'agg(channel) OP number')"
        )
    agg = m.group("agg")
    channel = m.group("channel") or m.group("bare")
    if agg is None:
        agg = "last"
    agg = agg.lower()
    if not (agg in _KNOWN_AGGS or re.fullmatch(r"p\d{1,2}", agg)):
        raise ConfigurationError(
            f"unknown aggregate {agg!r} in SLO rule {text!r} "
            f"(expected one of {_KNOWN_AGGS} or pNN)"
        )
    return SloRule(
        agg=agg,
        channel=channel,
        op=m.group("op"),
        threshold=float(m.group("value")),
        text=text.strip(),
    )


class SloWatchdog:
    """Evaluates a rule set against live aggregates, firing structured alerts.

    Parameters
    ----------
    rules:
        Rule strings or pre-parsed :class:`SloRule` objects.
    action:
        ``"warn"`` (default) logs + emits + counts; ``"abort"``
        additionally raises :class:`~repro.errors.SloViolation` on the
        first firing alert.
    metrics / tracer:
        Optional sinks (bound late by the live plane): alerts tick the
        ``slo.alerts`` counter plus a per-rule ``slo.alerts.<key>``
        counter and emit ``slo.alert`` / ``slo.clear`` trace events.
    """

    def __init__(
        self,
        rules: Iterable[str | SloRule],
        action: str = "warn",
        metrics=None,
        tracer=None,
    ):
        if action not in ("warn", "abort"):
            raise ConfigurationError("action must be 'warn' or 'abort'")
        self.rules: list[SloRule] = [
            r if isinstance(r, SloRule) else parse_rule(r) for r in rules
        ]
        self.action = action
        self.metrics = metrics
        self.tracer = tracer
        #: Rules currently in violation (edge-trigger state).
        self._violated: set[str] = set()
        #: Every alert fired so far, most recent last (bounded).
        self.alerts: list[dict] = []
        self.n_alerts = 0

    def bind(self, metrics, tracer) -> None:
        self.metrics = metrics
        self.tracer = tracer

    def rearm(self) -> None:
        """Reset the edge-trigger state at a run boundary.

        Each run is an independent workload, so a rule a previous run
        violated must fire again if this run violates it too — and this
        keeps alert counts identical between a serial batch (one shared
        watchdog) and a pooled one (fresh watchdog per worker run).
        """
        self._violated.clear()

    def evaluate(
        self,
        resolver: Callable[[str, str], float | None],
        slot: int | None = None,
        context: str | None = None,
    ) -> list[dict]:
        """Evaluate every rule; returns the alerts that fired *this* call."""
        fired: list[dict] = []
        abort_alert: dict | None = None
        for rule in self.rules:
            observed = resolver(rule.agg, rule.channel)
            if observed is None or observed != observed:  # None or NaN: no data
                continue
            if rule.holds(observed):
                if rule.key in self._violated:
                    self._violated.discard(rule.key)
                    if self.tracer is not None and self.tracer.enabled:
                        self.tracer.emit(
                            "slo.clear", rule=rule.text, observed=float(observed)
                        )
                continue
            if rule.key in self._violated:
                continue  # still violated; already alerted
            self._violated.add(rule.key)
            alert = {
                "rule": rule.text,
                "key": rule.key,
                "observed": float(observed),
                "threshold": rule.threshold,
                "op": rule.op,
            }
            if slot is not None:
                alert["slot"] = int(slot)
            if context is not None:
                alert["context"] = context
            fired.append(alert)
            self.n_alerts += 1
            self.alerts.append(alert)
            del self.alerts[:-64]  # keep a bounded tail for snapshots
            log.warning(
                "SLO violated: %s (observed %.6g, bound %s %.6g)%s",
                rule.text,
                observed,
                rule.op,
                rule.threshold,
                f" at slot {slot}" if slot is not None else "",
            )
            if self.metrics is not None:
                self.metrics.counter("slo.alerts").inc()
                self.metrics.counter(f"slo.alerts.{rule.key}").inc()
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit("slo.alert", **alert)
            if self.action == "abort" and abort_alert is None:
                abort_alert = alert
        if abort_alert is not None:
            raise SloViolation(
                f"SLO rule {abort_alert['rule']!r} violated "
                f"(observed {abort_alert['observed']:.6g})",
                rule=abort_alert["rule"],
                observed=abort_alert["observed"],
            )
        return fired

    def spec(self) -> dict:
        """Picklable description (rules as text) for shipping to workers."""
        return {"rules": [r.text for r in self.rules], "action": self.action}

    def __len__(self) -> int:
        return len(self.rules)


def rules_from_spec(spec: dict | None) -> "SloWatchdog | None":
    """Rebuild a watchdog from :meth:`SloWatchdog.spec` (None-safe)."""
    if not spec or not spec.get("rules"):
        return None
    return SloWatchdog(spec["rules"], action=spec.get("action", "warn"))


__all__.append("rules_from_spec")
