"""The ``repro.*`` logging hierarchy.

Every module in the package logs through ``logging.getLogger("repro.<mod>")``
(the executor's worker retries, the kernel backend fallback, the trace
overwrite guard, SLO alerts, heartbeat stalls).  By default those
records propagate to the root logger and vanish under the stdlib's
last-resort WARNING handler; :func:`logging_setup` gives the hierarchy
one real handler with a consistent format and an env-tunable level::

    from repro.obs.live import logging_setup
    logging_setup()                  # $REPRO_LOG_LEVEL or WARNING
    logging_setup("DEBUG")           # explicit level wins

``$REPRO_LOG_LEVEL`` accepts standard level names (``DEBUG``, ``INFO``,
``WARNING``, ``ERROR``) or integers.  Setup is idempotent — repeated
calls reconfigure the level but never stack handlers — and scoped to
the ``repro`` logger (``propagate=False``), so embedding applications
keep their own root configuration untouched.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["logging_setup", "LOG_LEVEL_ENV"]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"

#: Marker attribute identifying the handler this module installed.
_HANDLER_FLAG = "_repro_live_handler"


def logging_setup(level: int | str | None = None, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns the root ``repro`` logger.

    Parameters
    ----------
    level:
        Explicit level (name or number).  ``None`` reads
        ``$REPRO_LOG_LEVEL``, defaulting to ``WARNING``.
    stream:
        Destination stream (default ``sys.stderr``) — injectable for
        tests.
    """
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV, "WARNING")
    if isinstance(level, str):
        try:
            level = int(level)
        except ValueError:
            resolved = logging.getLevelName(level.upper())
            level = resolved if isinstance(resolved, int) else logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    existing = [
        h for h in logger.handlers if getattr(h, _HANDLER_FLAG, False)
    ]
    if existing:
        for handler in existing:
            handler.setLevel(level)
            if stream is not None:
                handler.setStream(stream)
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setLevel(level)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    logger.propagate = False
    return logger
