"""Allocation-light online statistics for the live telemetry plane.

Everything here is O(1) memory per stream — the engine feeds these from
its slot loop without retaining history, which is what makes watching a
2000-user run affordable:

* :class:`Ewma` — exponentially weighted moving average (rates, e.g.
  slots/sec);
* :class:`Welford` — numerically stable online mean/variance;
* :class:`P2Quantile` — the Jain & Chlamtac P² streaming quantile
  estimator (five markers per tracked quantile, no samples kept);
* :class:`StreamStat` — the composite the live plane keeps per channel
  (count/last/min/max + Welford + a P² sketch per tracked quantile).

The P² sketch is approximate; ``tests/obs/test_live_aggregators.py``
property-tests it against exact percentiles on random streams.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Ewma", "Welford", "P2Quantile", "StreamStat"]


class Ewma:
    """Exponentially weighted moving average with half-life semantics.

    ``update(value, dt_s)`` folds one observation in; the decay per
    update is ``0.5 ** (dt_s / halflife_s)``, so irregular update
    intervals (wall-clock ticks) weight correctly.  The first update
    seeds the average directly.
    """

    __slots__ = ("halflife_s", "value", "initialized")

    def __init__(self, halflife_s: float = 5.0):
        if halflife_s <= 0:
            raise ConfigurationError("halflife_s must be positive")
        self.halflife_s = float(halflife_s)
        self.value = 0.0
        self.initialized = False

    def update(self, value: float, dt_s: float = 1.0) -> float:
        value = float(value)
        if not self.initialized:
            self.value = value
            self.initialized = True
            return self.value
        decay = 0.5 ** (max(float(dt_s), 0.0) / self.halflife_s)
        self.value = decay * self.value + (1.0 - decay) * value
        return self.value


class Welford:
    """Online mean/variance (Welford's algorithm)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def add_array(self, values) -> None:
        """Fold a whole sample block in (Chan's parallel merge).

        Equivalent to ``add``-ing each value, at O(1) Python cost per
        block — the live plane's batched tick path.
        """
        values = np.asarray(values, dtype=float)
        k = int(values.size)
        if k == 0:
            return
        mean_b = float(values.mean())
        m2_b = float(((values - mean_b) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self._m2 = k, mean_b, m2_b
            return
        n = self.count
        total = n + k
        delta = mean_b - self.mean
        self._m2 += m2_b + delta * delta * n * k / total
        self.mean += delta * k / total
        self.count = total

    @property
    def variance(self) -> float:
        """Population variance (0 until two samples arrive)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Tracks one quantile ``q`` in (0, 1) with five markers whose heights
    approximate the ``(0, q/2, q, (1+q)/2, 1)`` quantiles; marker
    positions are adjusted toward their desired positions with
    piecewise-parabolic (falling back to linear) interpolation.  Exact
    until five samples arrive.
    """

    __slots__ = ("q", "_n", "_heights", "_pos", "_desired", "_incr")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ConfigurationError("q must lie strictly in (0, 1)")
        self.q = float(q)
        self._n = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._n

    def add(self, value: float) -> None:
        value = float(value)
        self._n += 1
        # Local aliases: this runs once per engine slot per sketch, so
        # attribute lookups are hoisted out of the marker arithmetic.
        h = self._heights
        if len(h) < 5:
            h.append(value)
            h.sort()
            return
        pos = self._pos
        desired = self._desired
        incr = self._incr
        # Locate the cell and clamp the extreme markers.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        desired[1] += incr[1]
        desired[2] += incr[2]
        desired[3] += incr[3]
        desired[4] += 1.0
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            right = pos[i + 1] - pos[i]
            left = pos[i - 1] - pos[i]
            if (d >= 1.0 and right > 1.0) or (d <= -1.0 and left < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def add_array(self, values) -> None:
        """Feed a block of samples (the plane's batched tick path).

        Float-exact against calling :meth:`add` per sample (identical
        marker state, same operation order in the interpolation), but
        with the whole update scalarized: markers live in plain locals
        for the duration of the block and are written back once.  The
        sketches are the only per-sample Python cost in live mode, so
        this loop is what keeps the plane inside its <3% engine
        overhead budget (``benchmarks/bench_kernels.py``).
        """
        h = self._heights
        n_new = len(values)
        if not n_new:
            return
        i0 = 0
        while len(h) < 5 and i0 < n_new:  # exact until five samples
            h.append(values[i0])
            h.sort()
            i0 += 1
            self._n += 1
        if i0 == n_new:
            return
        pos = self._pos
        desired = self._desired
        inc1, inc2, inc3 = self._incr[1], self._incr[2], self._incr[3]
        h0, h1, h2, h3, h4 = h
        p0, p1, p2, p3, p4 = pos
        d1, d2, d3, d4 = desired[1], desired[2], desired[3], desired[4]
        for j in range(i0, n_new):
            v = values[j]
            # Locate the cell; k is the first marker position to bump.
            if v < h0:
                h0 = v
                k = 1
            elif v >= h4:
                h4 = v
                k = 4
            elif v < h1:
                k = 1
            elif v < h2:
                k = 2
            elif v < h3:
                k = 3
            else:
                k = 4
            if k <= 1:
                p1 += 1.0
            if k <= 2:
                p2 += 1.0
            if k <= 3:
                p3 += 1.0
            p4 += 1.0
            d1 += inc1
            d2 += inc2
            d3 += inc3
            d4 += 1.0
            # Adjust marker 1 (parabolic, linear fallback).
            d = d1 - p1
            if d >= 1.0:
                step = 1.0
            elif d <= -1.0:
                step = -1.0
            else:
                step = 0.0
            if step != 0.0 and (
                (step > 0 and p2 - p1 > 1.0) or (step < 0 and p0 - p1 < -1.0)
            ):
                c = h1 + step / (p2 - p0) * (
                    (p1 - p0 + step) * (h2 - h1) / (p2 - p1)
                    + (p2 - p1 - step) * (h1 - h0) / (p1 - p0)
                )
                if not (h0 < c < h2):
                    if step > 0:
                        c = h1 + step * (h2 - h1) / (p2 - p1)
                    else:
                        c = h1 + step * (h0 - h1) / (p0 - p1)
                h1 = c
                p1 += step
            # Adjust marker 2.
            d = d2 - p2
            if d >= 1.0:
                step = 1.0
            elif d <= -1.0:
                step = -1.0
            else:
                step = 0.0
            if step != 0.0 and (
                (step > 0 and p3 - p2 > 1.0) or (step < 0 and p1 - p2 < -1.0)
            ):
                c = h2 + step / (p3 - p1) * (
                    (p2 - p1 + step) * (h3 - h2) / (p3 - p2)
                    + (p3 - p2 - step) * (h2 - h1) / (p2 - p1)
                )
                if not (h1 < c < h3):
                    if step > 0:
                        c = h2 + step * (h3 - h2) / (p3 - p2)
                    else:
                        c = h2 + step * (h1 - h2) / (p1 - p2)
                h2 = c
                p2 += step
            # Adjust marker 3.
            d = d3 - p3
            if d >= 1.0:
                step = 1.0
            elif d <= -1.0:
                step = -1.0
            else:
                step = 0.0
            if step != 0.0 and (
                (step > 0 and p4 - p3 > 1.0) or (step < 0 and p2 - p3 < -1.0)
            ):
                c = h3 + step / (p4 - p2) * (
                    (p3 - p2 + step) * (h4 - h3) / (p4 - p3)
                    + (p4 - p3 - step) * (h3 - h2) / (p3 - p2)
                )
                if not (h2 < c < h4):
                    if step > 0:
                        c = h3 + step * (h4 - h3) / (p4 - p3)
                    else:
                        c = h3 + step * (h2 - h3) / (p2 - p3)
                h3 = c
                p3 += step
        h[0], h[1], h[2], h[3], h[4] = h0, h1, h2, h3, h4
        pos[1], pos[2], pos[3], pos[4] = p1, p2, p3, p4
        desired[1], desired[2], desired[3], desired[4] = d1, d2, d3, d4
        self._n += n_new - i0

    def _parabolic(self, i: int, step: float) -> float:
        p, h = self._pos, self._heights
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        j = i + int(step)
        return self._heights[i] + step * (self._heights[j] - self._heights[i]) / (
            self._pos[j] - self._pos[i]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any sample)."""
        n = len(self._heights)
        if n == 0:
            return float("nan")
        if n < 5:
            # Exact nearest-rank on the few samples seen so far.
            rank = max(1, math.ceil(self.q * n))
            return self._heights[rank - 1]
        return self._heights[2]


class StreamStat:
    """Per-channel composite: count/last/min/max, Welford, P² sketches.

    ``quantiles`` are tracked with one P² sketch each; ``snapshot()``
    reports them as ``p50``/``p95``-style keys.
    """

    __slots__ = ("name", "last", "min", "max", "welford", "_sketches")

    def __init__(self, name: str, quantiles: tuple[float, ...] = (0.5, 0.95)):
        self.name = name
        self.last = float("nan")
        self.min = float("inf")
        self.max = float("-inf")
        self.welford = Welford()
        self._sketches = {q: P2Quantile(q) for q in quantiles}

    @property
    def count(self) -> int:
        return self.welford.count

    def add(self, value: float) -> None:
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.welford.add(value)
        for sketch in self._sketches.values():
            sketch.add(value)

    def add_array(self, values) -> None:
        """Fold a block of samples in (vectorized where possible).

        Identical aggregates to per-sample ``add`` calls: min/max/mean/
        variance merge in O(1) Python per block, and the P² sketches —
        sequential by construction — consume the block in one tight
        loop each.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        self.last = float(values[-1])
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        self.welford.add_array(values)
        if self._sketches:
            samples = values.tolist()
            for sketch in self._sketches.values():
                sketch.add_array(samples)

    def quantile(self, q: float) -> float:
        """The tracked estimate for ``q`` (NaN for untracked quantiles)."""
        sketch = self._sketches.get(q)
        return sketch.value if sketch is not None else float("nan")

    def aggregate(self, agg: str) -> float:
        """Look up one aggregate by SLO-rule name (``p95``, ``mean``, ...)."""
        if agg in ("last", "value"):
            return self.last
        if agg == "mean":
            return self.welford.mean
        if agg == "std":
            return self.welford.std
        if agg == "min":
            return self.min if self.count else float("nan")
        if agg == "max":
            return self.max if self.count else float("nan")
        if agg == "count":
            return float(self.count)
        if agg == "sum":
            # Recovered from the Welford state rather than tracked
            # separately; exact enough for thresholds on totals (e.g.
            # ``sum(outage_slots) < 500``) and deterministic for a
            # given sample sequence.
            return self.welford.mean * self.count
        if agg.startswith("p") and agg[1:].isdigit():
            return self.quantile(float(agg[1:]) / 100.0)
        raise ConfigurationError(f"unknown aggregate {agg!r}")

    def snapshot(self) -> dict[str, float]:
        """Plain-float summary (safe to JSON-serialise / ship in a heartbeat)."""
        if not self.count:
            return {"count": 0}
        out = {
            "count": self.count,
            "last": self.last,
            "mean": self.welford.mean,
            "std": self.welford.std,
            "min": self.min,
            "max": self.max,
        }
        for q, sketch in self._sketches.items():
            out[f"p{round(q * 100):d}"] = sketch.value
        return out
