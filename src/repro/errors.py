"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one type at an API boundary.  Configuration problems are
surfaced eagerly (at object construction) wherever possible.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A model, scheduler, or simulation was configured inconsistently."""


class ConstraintViolationError(ReproError):
    """A scheduler produced an allocation violating constraints (1)/(2).

    Attributes
    ----------
    slot:
        Slot index at which the violation was detected, if known.
    detail:
        Human-readable description of the violated constraint.
    """

    def __init__(self, detail: str, slot: int | None = None):
        self.slot = slot
        self.detail = detail
        prefix = f"slot {slot}: " if slot is not None else ""
        super().__init__(f"{prefix}{detail}")


class SimulationError(ReproError, RuntimeError):
    """The simulation engine entered an invalid state."""


class SloViolation(SimulationError):
    """A live SLO watchdog rule fired with ``action="abort"``.

    Attributes
    ----------
    rule:
        The violated rule's source text (e.g. ``"p95(rebuffer_s) < 0.5"``).
    observed:
        The aggregate value that broke the bound.
    """

    def __init__(self, message: str, rule: str | None = None, observed: float | None = None):
        self.rule = rule
        self.observed = observed
        super().__init__(message)


class TraceError(ReproError, ValueError):
    """A supplied signal/bitrate trace is malformed (shape, range, NaNs)."""
