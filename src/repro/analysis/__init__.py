"""Analysis utilities: CDFs, summary statistics, text tables."""

from repro.analysis.cdf import cdf_at, quantile, tail_fraction
from repro.analysis.stats import bootstrap_ci, mean_confidence_interval, relative_reduction
from repro.analysis.tables import Table

__all__ = [
    "cdf_at",
    "quantile",
    "tail_fraction",
    "mean_confidence_interval",
    "bootstrap_ci",
    "relative_reduction",
    "Table",
]
