"""Empirical-CDF query helpers used by the figure reproductions.

The paper's figures make claims of the form "the fairness index of
RTMA is larger than 0.7 for more than 90% of time slots" — i.e.
statements about empirical CDF evaluations.  These helpers turn raw
samples into exactly those quantities so the benches can assert them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["cdf_at", "tail_fraction", "quantile"]


def _clean(samples) -> np.ndarray:
    x = np.asarray(samples, dtype=float).ravel()
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ConfigurationError("no finite samples")
    return x


def cdf_at(samples, value: float) -> float:
    """``P(X <= value)`` under the empirical distribution."""
    x = _clean(samples)
    return float((x <= value).mean())


def tail_fraction(samples, threshold: float) -> float:
    """``P(X > threshold)`` — e.g. 'fraction of slots with fairness > 0.7'."""
    x = _clean(samples)
    return float((x > threshold).mean())


def quantile(samples, q: float) -> float:
    """The ``q``-quantile of the samples (``0 <= q <= 1``)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("q must be in [0, 1]")
    return float(np.quantile(_clean(samples), q))
