"""Summary statistics for multi-seed experiment replication."""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigurationError

__all__ = ["mean_confidence_interval", "bootstrap_ci", "relative_reduction"]


def mean_confidence_interval(
    samples, confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, lo, hi)`` via the Student-t interval.

    A single sample yields a degenerate interval at the point.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ConfigurationError("need at least one sample")
    m = float(x.mean())
    if x.size == 1:
        return m, m, m
    sem = float(sps.sem(x))
    if sem == 0.0:
        return m, m, m
    half = float(sem * sps.t.ppf(0.5 + confidence / 2.0, x.size - 1))
    return m, m - half, m + half


def bootstrap_ci(
    samples,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng=None,
) -> tuple[float, float, float]:
    """``(point, lo, hi)`` via percentile bootstrap."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    x = np.asarray(samples, dtype=float).ravel()
    if x.size == 0:
        raise ConfigurationError("need at least one sample")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    point = float(statistic(x))
    if x.size == 1:
        return point, point, point
    idx = gen.integers(0, x.size, size=(n_resamples, x.size))
    reps = np.asarray([statistic(x[row]) for row in idx], dtype=float)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(reps, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


def relative_reduction(baseline: float, treatment: float) -> float:
    """``(baseline - treatment) / baseline`` — the paper's 'reduces X%'.

    Positive means the treatment improved on the baseline.
    """
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive")
    return (baseline - treatment) / baseline
