"""Plain-text result tables.

Every experiment module renders its output through :class:`Table` so
the console output, EXPERIMENTS.md, and the bench logs all share one
format.  Cells are formatted per-column; alignment is computed from
rendered widths.  :func:`summary_table` is the canonical rendering of
run results — it reads
:meth:`~repro.sim.results.SimulationResult.to_summary_dict` so every
consumer (examples, the ``repro-trace`` CLI, benches) shows the same
aggregates instead of re-deriving them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["Table", "summary_table"]


class Table:
    """A small fixed-schema text table.

    >>> t = Table(["scheduler", "PC (s)"], formats=[None, ".3f"])
    >>> t.add_row(["rtma", 0.0123])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        columns: Sequence[str],
        formats: Sequence[str | None] | None = None,
        title: str | None = None,
    ):
        if not columns:
            raise ConfigurationError("need at least one column")
        self.columns = [str(c) for c in columns]
        if formats is None:
            formats = [None] * len(self.columns)
        if len(formats) != len(self.columns):
            raise ConfigurationError("formats length must match columns")
        self.formats = list(formats)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        rendered = []
        for value, fmt in zip(values, self.formats):
            if fmt is None or isinstance(value, str):
                rendered.append(str(value))
            else:
                rendered.append(format(value, fmt))
        self.rows.append(rendered)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for j, cell in enumerate(row):
                widths[j] = max(widths[j], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_line(self.columns))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        header = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = ["| " + " | ".join(row) + " |" for row in self.rows]
        parts = []
        if self.title:
            parts.append(f"**{self.title}**")
            parts.append("")
        parts.extend([header, sep, *body])
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


def summary_table(results: Mapping[str, object], title: str | None = None) -> Table:
    """Headline-metrics table for named runs.

    ``results`` maps display names to
    :class:`~repro.sim.results.SimulationResult` objects (duck-typed on
    ``to_summary_dict``), e.g. the output of
    :func:`repro.sim.runner.compare_schedulers`.
    """
    if not results:
        raise ConfigurationError("need at least one result")
    table = Table(
        [
            "scheduler",
            "PE (mJ)",
            "PC (s)",
            "tail (mJ)",
            "fairness",
            "completed",
            "rebuf/user (s)",
        ],
        formats=[None, ".1f", ".4f", ".1f", ".3f", ".0%", ".2f"],
        title=title,
    )
    for name, result in results.items():
        s = result.to_summary_dict()
        table.add_row(
            [
                name,
                s["pe_mj"],
                s["pc_s"],
                s["pe_tail_mj"],
                s["mean_fairness"],
                s["completion_rate"],
                s["total_rebuffering_per_user_s"],
            ]
        )
    return table
