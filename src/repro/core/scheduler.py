"""Scheduler interface.

Every policy — the paper's RTMA and EMA plus all reimplemented
baselines — is a :class:`Scheduler`: given a
:class:`~repro.net.gateway.SlotObservation` it returns the integer
data-unit allocation ``phi_i(n)`` for all users, subject to the link
constraint (Eq. 1) and the capacity constraint (Eq. 2).

Schedulers may be stateful (EMA maintains virtual queues; ON-OFF keeps
per-user hysteresis state); the engine calls :meth:`Scheduler.notify`
after transmission with what was actually delivered so a policy's
internal state tracks ground truth, and :meth:`Scheduler.reset` between
runs.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.net.gateway import SlotObservation

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Base class for per-slot data-unit allocation policies."""

    #: Human-readable policy name (used in result tables).
    name: str = "scheduler"

    #: Observability bundle attached by the engine for the current run
    #: (``None`` when running uninstrumented).  Stateful policies may
    #: use it to expose internal state — EMA publishes its virtual
    #: queues as the ``ema.virtual_queues`` gauge from ``notify``.
    instrumentation = None

    def bind_instrumentation(self, instrumentation) -> None:
        """Attach (or, with ``None``, detach) an observability bundle.

        Called by :meth:`repro.sim.engine.Simulation.run` before the
        first slot, after :meth:`reset`.  Policies must not let the
        bundle influence allocations — instrumentation is observational.
        """
        self.instrumentation = instrumentation

    @abc.abstractmethod
    def allocate(self, obs: SlotObservation) -> np.ndarray:
        """Return the allocation ``phi`` (int64 array, shape (n_users,)).

        Must satisfy ``0 <= phi_i <= obs.link_units[i]`` and
        ``sum(phi) <= obs.unit_budget``; inactive users must get 0.
        """

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        """Post-transmission feedback hook (default: no-op).

        ``delivered_kb`` may be smaller than ``phi * delta`` when a
        session ran out of bytes; stateful policies should track the
        delivered amounts, not the requested ones.
        """

    def reset(self) -> None:
        """Clear internal state before a fresh run (default: no-op)."""

    def grow_users(self, n_users: int) -> None:
        """Resize per-user state to ``n_users`` rows (dynamic lifecycle).

        Called by the dynamic engine whenever the fleet's row capacity
        changes.  Stateful policies must preserve the state of the
        common row prefix bit-for-bit and initialise new rows exactly
        like a fresh run; the one shrink happens at run start, before
        any state accrues.  Stateless policies (and policies whose
        scratch auto-sizes to the observation) inherit this no-op.
        """

    def release_users(self, rows) -> None:
        """Reset per-user state for vacated rows (default: no-op).

        Called when sessions retire; ``rows`` indexes rows that may be
        recycled for future sessions and must come up indistinguishable
        from freshly-initialised ones.
        """

    @staticmethod
    def _zeros(obs: SlotObservation) -> np.ndarray:
        """Fresh all-zeros allocation for ``obs``."""
        return np.zeros(obs.n_users, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"
