"""Reference solvers for the per-slot allocation problem.

The paper proves both per-slot problems NP-hard by reduction from
multiple-choice knapsack.  These solvers exist to *verify* the fast
implementations, not to run at scale:

* :func:`brute_force_slot_minimum` — exhaustive enumeration over the
  full allocation lattice (only viable for tiny instances; used in
  property tests of the EMA dynamic program);
* :func:`exact_slot_minimum` — the textbook O(N * M * w) dynamic
  program of Algorithm 2, written plainly (explicit loops), against
  which the sliding-window-minimum implementation in
  :mod:`repro.core.ema` is checked on larger random instances.

Both take arbitrary per-user cost tables ``f_i(phi)`` so they can also
serve offline "what was the best possible slot decision" analyses.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["brute_force_slot_minimum", "exact_slot_minimum"]


def _validate_tables(cost_tables: list[np.ndarray]) -> list[np.ndarray]:
    if not cost_tables:
        raise ConfigurationError("need at least one user cost table")
    tables = []
    for idx, tab in enumerate(cost_tables):
        arr = np.asarray(tab, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError(f"user {idx}: cost table must be non-empty 1-D")
        if np.any(np.isnan(arr)):
            raise ConfigurationError(f"user {idx}: cost table contains NaN")
        tables.append(arr)
    return tables


def brute_force_slot_minimum(
    cost_tables: list[np.ndarray], unit_budget: int
) -> tuple[float, np.ndarray]:
    """Exhaustive minimum of ``sum_i f_i(phi_i)`` s.t. ``sum phi <= budget``.

    ``cost_tables[i][phi]`` is ``f_i(phi)`` for ``phi`` from 0 to that
    user's cap.  Exponential in the number of users — keep instances
    tiny (tests use N <= 4, caps <= 6).
    """
    tables = _validate_tables(cost_tables)
    if unit_budget < 0:
        raise ConfigurationError("unit_budget must be non-negative")
    best_val = np.inf
    best_alloc = np.zeros(len(tables), dtype=np.int64)
    ranges = [range(t.size) for t in tables]
    for combo in itertools.product(*ranges):
        if sum(combo) > unit_budget:
            continue
        val = sum(t[c] for t, c in zip(tables, combo))
        if val < best_val:
            best_val = val
            best_alloc = np.array(combo, dtype=np.int64)
    return float(best_val), best_alloc


def exact_slot_minimum(
    cost_tables: list[np.ndarray], unit_budget: int
) -> tuple[float, np.ndarray]:
    """Plain DP solving the same problem in O(N * M * max_cap).

    Returns ``(value, allocation)``.  Ties broken toward smaller
    ``phi`` for the later-indexed users (matching the EMA
    implementation's preference for not transmitting on ties).
    """
    tables = _validate_tables(cost_tables)
    if unit_budget < 0:
        raise ConfigurationError("unit_budget must be non-negative")
    n = len(tables)
    m = unit_budget
    # a[i][M]: best cost of users 0..i with total units <= M.
    a = np.full((n, m + 1), np.inf)
    for big_m in range(m + 1):
        cap = min(tables[0].size - 1, big_m)
        a[0, big_m] = tables[0][: cap + 1].min()
    for i in range(1, n):
        for big_m in range(m + 1):
            cap = min(tables[i].size - 1, big_m)
            best = np.inf
            for phi in range(cap + 1):
                cand = a[i - 1, big_m - phi] + tables[i][phi]
                if cand < best:
                    best = cand
            a[i, big_m] = best
    # Backtrack.
    alloc = np.zeros(n, dtype=np.int64)
    big_m = int(np.argmin(a[n - 1]))
    value = float(a[n - 1, big_m])
    for i in range(n - 1, -1, -1):
        cap = min(tables[i].size - 1, big_m)
        prev = (lambda k: a[i - 1, k]) if i > 0 else (lambda k: 0.0)
        best_phi = 0
        best_val = prev(big_m) + tables[i][0]
        for phi in range(1, cap + 1):
            cand = prev(big_m - phi) + tables[i][phi]
            if cand < best_val - 1e-12:
                best_val = cand
                best_phi = phi
        alloc[i] = best_phi
        big_m -= best_phi
    return value, alloc
