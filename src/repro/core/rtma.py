"""RTMA — Rebuffering Time Minimization Algorithm (paper Section IV).

RTMA minimizes the global rebuffering time subject to a per-slot energy
budget ``Phi`` (Eq. 10).  The budget is enforced through the Eq. (12)
conversion: a signal-strength threshold ``phi_sig`` such that users
whose RSSI falls below it are not scheduled at all that slot — a
*stricter* condition than Eq. (10), as the paper notes, trading some
local optimality for a constraint that is enforceable online without
knowing other users' allocations.

Above the threshold, Algorithm 1 allocates in *rounds*: users are
sorted by required data rate (ascending — cheap-to-satisfy playback
first), and each round grants each user at most its one-slot need
``phi_need = ceil(tau * p_i / delta)``, iterating until the BS unit
budget or every user's link capacity (Eq. 1) is exhausted.  The
round structure is what produces RTMA's fairness (Fig. 2): no user can
seize the whole BS before every user has been offered its need.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation
from repro.radio.power import EnviPowerModel

__all__ = ["RTMAScheduler", "signal_threshold_for_energy_budget"]


def signal_threshold_for_energy_budget(
    energy_budget_mj_per_slot: float,
    power_model: EnviPowerModel,
    tau_s: float = constants.DEFAULT_TAU_S,
    p_tail_mw: float = constants.POWER_DCH_MW,
) -> float:
    """Invert Eq. (12): budget ``Phi`` -> signal threshold ``phi_sig``.

    Eq. (12) estimates the per-slot energy at threshold signal
    ``phi_sig`` as the mean of the full-rate transmission energy and
    the slot tail energy::

        Phi = 0.5 * (P(phi_sig) * v(phi_sig) * tau + tau * P_tail)

    Because the radio power ``P(sig) * v(sig)`` *decreases* with
    signal strength under the paper's fits, a tighter budget demands a
    stronger signal.  Returns ``-inf`` when the budget is loose enough
    that any signal qualifies (required radio power above the fit's
    supremum), and ``+inf`` when the budget is unattainable even at the
    strongest signal.
    """
    if energy_budget_mj_per_slot <= 0:
        raise ConfigurationError("energy budget must be positive")
    if tau_s <= 0:
        raise ConfigurationError("tau_s must be positive")
    if p_tail_mw < 0:
        raise ConfigurationError("p_tail_mw must be non-negative")
    required_radio_power_mw = 2.0 * energy_budget_mj_per_slot / tau_s - p_tail_mw
    if required_radio_power_mw >= power_model.scale:
        # Radio power is c0*v + c1 <= c1 (= scale) for c0 < 0: any
        # signal satisfies the budget.
        return float("-inf")
    try:
        threshold = power_model.signal_for_radio_power(required_radio_power_mw)
    except ConfigurationError:
        return float("inf")
    v_max = power_model.throughput.v_max
    if float(power_model.throughput.v(threshold)) > v_max:
        return float("inf")
    return threshold


class RTMAScheduler(Scheduler):
    """Algorithm 1 with the Eq. (12) energy-to-signal conversion.

    Parameters
    ----------
    energy_budget_mj_per_slot:
        The per-user-slot energy bound ``Phi`` (Eq. 10).  In the
        paper's evaluation this is ``alpha`` times the *default*
        strategy's measured energy.  ``None`` disables the energy
        constraint (pure rebuffering minimization).
    power_model:
        Needed to derive the signal threshold; defaults to the paper's
        EnVi fit.
    p_tail_mw:
        Tail-power estimate used inside Eq. (12); the paper words it as
        "the tail energy in a slot", which for a 1-second slot at the
        head of the tail is the DCH power (default).
    sig_threshold_dbm:
        Escape hatch: supply the threshold directly and skip Eq. (12).
    """

    name = "rtma"

    def __init__(
        self,
        energy_budget_mj_per_slot: float | None = None,
        power_model: EnviPowerModel | None = None,
        tau_s: float = constants.DEFAULT_TAU_S,
        p_tail_mw: float = constants.POWER_DCH_MW,
        sig_threshold_dbm: float | None = None,
    ):
        if sig_threshold_dbm is not None and energy_budget_mj_per_slot is not None:
            raise ConfigurationError(
                "give either energy_budget_mj_per_slot or sig_threshold_dbm, not both"
            )
        self.energy_budget_mj_per_slot = energy_budget_mj_per_slot
        if sig_threshold_dbm is not None:
            self.sig_threshold_dbm = float(sig_threshold_dbm)
        elif energy_budget_mj_per_slot is not None:
            model = power_model if power_model is not None else EnviPowerModel()
            self.sig_threshold_dbm = signal_threshold_for_energy_budget(
                energy_budget_mj_per_slot, model, tau_s, p_tail_mw
            )
        else:
            self.sig_threshold_dbm = float("-inf")

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        phi = self._zeros(obs)
        eligible = (
            obs.active
            & (obs.sig_dbm >= self.sig_threshold_dbm)
            & (obs.link_units > 0)
        )
        if not np.any(eligible) or obs.unit_budget <= 0:
            return phi

        # Step 3: one-slot need, ceil(tau * p_i / delta), at least 1 unit.
        need = np.ceil(obs.tau_s * obs.rate_kbps / obs.delta_kb).astype(np.int64)
        need = np.maximum(need, 1)
        # Never allocate past the end of the video or the receiver window.
        useful_units = np.ceil(obs.sendable_kb / obs.delta_kb).astype(np.int64)
        per_user_cap = np.minimum(obs.link_units, useful_units)

        # Steps 1-2: ascending required data rate (stable for ties).
        order = np.argsort(obs.rate_kbps, kind="stable")
        budget = int(obs.unit_budget)

        # Steps 4-15: rounds of at-most-phi_need grants in sorted order.
        while budget > 0:
            headroom = per_user_cap - phi
            take = np.minimum(need, headroom)
            take[~eligible] = 0
            np.maximum(take, 0, out=take)
            if not take.any():
                break
            # Grant in ascending-rate order under the remaining budget —
            # identical to the sequential inner loop of Algorithm 1.
            take_sorted = take[order]
            cum = np.cumsum(take_sorted)
            grant_sorted = np.where(
                cum <= budget,
                take_sorted,
                np.maximum(budget - (cum - take_sorted), 0),
            )
            grant = np.empty_like(grant_sorted)
            grant[order] = grant_sorted
            granted = int(grant.sum())
            if granted == 0:
                break
            phi += grant
            budget -= granted
        return phi
