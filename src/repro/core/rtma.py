"""RTMA — Rebuffering Time Minimization Algorithm (paper Section IV).

RTMA minimizes the global rebuffering time subject to a per-slot energy
budget ``Phi`` (Eq. 10).  The budget is enforced through the Eq. (12)
conversion: a signal-strength threshold ``phi_sig`` such that users
whose RSSI falls below it are not scheduled at all that slot — a
*stricter* condition than Eq. (10), as the paper notes, trading some
local optimality for a constraint that is enforceable online without
knowing other users' allocations.

Above the threshold, Algorithm 1 allocates in *rounds*: users are
sorted by required data rate (ascending — cheap-to-satisfy playback
first), and each round grants each user at most its one-slot need
``phi_need = ceil(tau * p_i / delta)``, iterating until the BS unit
budget or every user's link capacity (Eq. 1) is exhausted.  The
round structure is what produces RTMA's fairness (Fig. 2): no user can
seize the whole BS before every user has been offered its need.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.kernels import registry as kernel_registry
from repro.net.gateway import SlotObservation
from repro.radio.power import EnviPowerModel

__all__ = ["RTMAScheduler", "signal_threshold_for_energy_budget"]


def signal_threshold_for_energy_budget(
    energy_budget_mj_per_slot: float,
    power_model: EnviPowerModel,
    tau_s: float = constants.DEFAULT_TAU_S,
    p_tail_mw: float = constants.POWER_DCH_MW,
) -> float:
    """Invert Eq. (12): budget ``Phi`` -> signal threshold ``phi_sig``.

    Eq. (12) estimates the per-slot energy at threshold signal
    ``phi_sig`` as the mean of the full-rate transmission energy and
    the slot tail energy::

        Phi = 0.5 * (P(phi_sig) * v(phi_sig) * tau + tau * P_tail)

    Because the radio power ``P(sig) * v(sig)`` *decreases* with
    signal strength under the paper's fits, a tighter budget demands a
    stronger signal.  Returns ``-inf`` when the budget is loose enough
    that any signal qualifies (required radio power above the fit's
    supremum), and ``+inf`` when the budget is unattainable even at the
    strongest signal.
    """
    if energy_budget_mj_per_slot <= 0:
        raise ConfigurationError("energy budget must be positive")
    if tau_s <= 0:
        raise ConfigurationError("tau_s must be positive")
    if p_tail_mw < 0:
        raise ConfigurationError("p_tail_mw must be non-negative")
    required_radio_power_mw = 2.0 * energy_budget_mj_per_slot / tau_s - p_tail_mw
    if required_radio_power_mw >= power_model.scale:
        # Radio power is c0*v + c1 <= c1 (= scale) for c0 < 0: any
        # signal satisfies the budget.
        return float("-inf")
    try:
        threshold = power_model.signal_for_radio_power(required_radio_power_mw)
    except ConfigurationError:
        return float("inf")
    v_max = power_model.throughput.v_max
    if float(power_model.throughput.v(threshold)) > v_max:
        return float("inf")
    return threshold


class RTMAScheduler(Scheduler):
    """Algorithm 1 with the Eq. (12) energy-to-signal conversion.

    Parameters
    ----------
    energy_budget_mj_per_slot:
        The per-user-slot energy bound ``Phi`` (Eq. 10).  In the
        paper's evaluation this is ``alpha`` times the *default*
        strategy's measured energy.  ``None`` disables the energy
        constraint (pure rebuffering minimization).
    power_model:
        Needed to derive the signal threshold; defaults to the paper's
        EnVi fit.
    p_tail_mw:
        Tail-power estimate used inside Eq. (12); the paper words it as
        "the tail energy in a slot", which for a 1-second slot at the
        head of the tail is the DCH power (default).
    sig_threshold_dbm:
        Escape hatch: supply the threshold directly and skip Eq. (12).
    """

    name = "rtma"

    def __init__(
        self,
        energy_budget_mj_per_slot: float | None = None,
        power_model: EnviPowerModel | None = None,
        tau_s: float = constants.DEFAULT_TAU_S,
        p_tail_mw: float = constants.POWER_DCH_MW,
        sig_threshold_dbm: float | None = None,
    ):
        if sig_threshold_dbm is not None and energy_budget_mj_per_slot is not None:
            raise ConfigurationError(
                "give either energy_budget_mj_per_slot or sig_threshold_dbm, not both"
            )
        self.energy_budget_mj_per_slot = energy_budget_mj_per_slot
        if sig_threshold_dbm is not None:
            self.sig_threshold_dbm = float(sig_threshold_dbm)
        elif energy_budget_mj_per_slot is not None:
            model = power_model if power_model is not None else EnviPowerModel()
            self.sig_threshold_dbm = signal_threshold_for_energy_budget(
                energy_budget_mj_per_slot, model, tau_s, p_tail_mw
            )
        else:
            self.sig_threshold_dbm = float("-inf")
        self._scratch: dict | None = None
        self._kernel = None

    def _buffers(self, n_users: int) -> dict:
        s = self._scratch
        if s is None or s["need"].size != n_users:
            s = {
                "eligible": np.empty(n_users, dtype=bool),
                "b_tmp": np.empty(n_users, dtype=bool),
                "need": np.empty(n_users, dtype=np.int64),
                "cap": np.empty(n_users, dtype=np.int64),
                "f_tmp": np.empty(n_users, dtype=float),
            }
            self._scratch = s
        return s

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        phi = self._zeros(obs)
        s = self._buffers(obs.n_users)
        eligible = s["eligible"]
        np.greater_equal(obs.sig_dbm, self.sig_threshold_dbm, out=eligible)
        np.logical_and(eligible, obs.active, out=eligible)
        np.greater(obs.link_units, 0, out=s["b_tmp"])
        np.logical_and(eligible, s["b_tmp"], out=eligible)
        if not np.any(eligible) or obs.unit_budget <= 0:
            return phi

        # Step 3: one-slot need, ceil(tau * p_i / delta), at least 1 unit.
        f = s["f_tmp"]
        need = s["need"]
        np.multiply(obs.rate_kbps, obs.tau_s, out=f)
        np.divide(f, obs.delta_kb, out=f)
        np.ceil(f, out=f)
        np.copyto(need, f, casting="unsafe")
        np.maximum(need, 1, out=need)
        # Never allocate past the end of the video or the receiver window.
        cap = s["cap"]
        np.minimum(obs.remaining_kb, obs.receivable_kb, out=f)
        np.divide(f, obs.delta_kb, out=f)
        np.ceil(f, out=f)
        np.copyto(cap, f, casting="unsafe")
        np.minimum(obs.link_units, cap, out=cap)

        # Steps 1-2: ascending required data rate (stable for ties);
        # steps 4-15: rounds of at-most-phi_need grants in sorted order,
        # dispatched to the active kernel backend.
        order = np.argsort(obs.rate_kbps, kind="stable")
        if self._kernel is None:
            self._kernel = kernel_registry.resolve("rtma_rounds")
        self._kernel(phi, eligible, need, cap, order, int(obs.unit_budget))
        return phi

    def reset(self) -> None:
        # Re-resolve on next allocate so an ambient use_backend() block
        # entered after construction (the engine's cfg.kernel_backend)
        # governs the kernel choice.
        self._kernel = None
