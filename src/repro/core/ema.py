"""EMA — Energy Minimization Algorithm (paper Section V, Algorithm 2).

EMA minimizes average energy subject to an average rebuffering bound by
the Lyapunov drift-plus-penalty method: each slot it solves

    min  sum_i f(i, phi_i)            (Eq. 22)
    s.t. constraints (1) and (2)

where, with virtual queue ``PC_i`` (Eq. 16) and ``t_i = delta*phi_i/p_i``,

    f(i, phi) = V * E_i(phi) + PC_i * (tau - t_i)
    E_i(phi)  = P(sig_i) * phi * delta     (phi >= 1, Eq. 3)
    E_i(0)    = this slot's incremental tail energy (Eqs. 4-5).

The per-slot problem is a multiple-choice knapsack, which Algorithm 2
solves exactly by dynamic programming over the total unit count ``M``.

Implementation note — sliding-window minimum
--------------------------------------------
For ``phi >= 1`` the cost is *affine* in ``phi``:
``f(i, phi) = PC_i*tau + slope_i*phi`` with
``slope_i = delta * (V*P_i - PC_i/p_i)``.  The DP transition

    a[i][M] = min(a[i-1][M] + f(i,0),
                  min_{1<=phi<=w_i} a[i-1][M-phi] + f(i,phi))

then becomes, for the transmit branch,

    PC_i*tau + slope_i*M + min_{M-w_i <= k <= M-1} (a[i-1][k] - slope_i*k)

— a trailing-window minimum computable in O(M) per user with
:func:`scipy.ndimage.minimum_filter1d`, instead of the naive
O(M * w_i).  The result is *exact*: ``tests/core/test_ema.py``
cross-checks it against the brute-force reference in
:mod:`repro.core.knapsack` on randomized instances.
"""

from __future__ import annotations

from math import isfinite

import numpy as np
from scipy.ndimage import minimum_filter1d

from repro import constants
from repro.core.lyapunov import VirtualQueues
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["EMAScheduler", "trailing_window_min"]

try:  # pragma: no cover - import plumbing
    # The DP loop calls the minimum filter once per active user per
    # slot; the public wrapper's argument validation is measurable at
    # that call rate.  This invokes the same C routine with the same
    # arguments the wrapper would pass (axis normalized, mode
    # pre-encoded), so results are bit-identical; any scipy-internal
    # change falls back to the public function.
    from scipy.ndimage import _nd_image as _scipy_nd_image
    from scipy.ndimage import _ni_support as _scipy_ni_support

    _MODE_CONSTANT = _scipy_ni_support._extend_mode_to_code("constant")

    def _trailing_min_into(shifted, size, origin, out):
        _scipy_nd_image.min_or_max_filter1d(
            shifted, size, 0, out, _MODE_CONSTANT, np.inf, origin, 1
        )
except Exception:  # pragma: no cover - scipy internals moved

    def _trailing_min_into(shifted, size, origin, out):
        minimum_filter1d(
            shifted, size=size, mode="constant", cval=np.inf, origin=origin, output=out
        )


def trailing_window_min(values: np.ndarray, window: int) -> np.ndarray:
    """``out[M] = min(values[max(0, M-window) : M])`` (empty -> +inf).

    The trailing window *excludes* index ``M`` itself — exactly the
    ``k = M - phi`` range for ``phi in [1, window]``.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    v = np.asarray(values, dtype=float)
    # Shift right so the window ending at M-1 becomes a window ending at M.
    shifted = np.empty_like(v)
    shifted[0] = np.inf
    shifted[1:] = v[:-1]
    w = min(window, v.size)
    # scipy's origin shifts the window start *back* by `origin`; the
    # trailing window [M - w + 1, M] on `shifted` needs the window's
    # right edge at M, i.e. origin = w - 1 - w//2 (= ceil(w/2) - 1,
    # always within scipy's |origin| <= w//2 limit).
    origin = w - 1 - w // 2
    return minimum_filter1d(shifted, size=w, mode="constant", cval=np.inf, origin=origin)


class EMAScheduler(Scheduler):
    """Algorithm 2: Lyapunov drift-plus-penalty with exact per-slot DP.

    Parameters
    ----------
    n_users:
        Number of users (fixes the virtual-queue dimension).
    v_param:
        The Lyapunov trade-off weight ``V``: larger values privilege
        energy over rebuffering (Theorem 1: energy gap O(1/V),
        rebuffering O(V)).
    tau_s:
        Slot length, seconds.
    queue_floor_s:
        Optional lower clamp on ``PC_i``.  ``None`` reproduces the
        paper (unbounded negative queues = unlimited prefetch credit);
        a finite floor, e.g. ``-60``, bounds how far ahead EMA will
        push media, mimicking a client buffer cap.
    queue_init:
        Initial virtual-queue value.  Drift-plus-penalty transmits only
        once ``PC_i`` climbs past ``~V * P * p_i``, so zero-initialised
        queues (the literal Eq. 16 reading) stall every user for
        ``O(V)`` seconds *at session start* — an artifact the
        infinite-horizon Theorem 1 averages away but finite sessions
        feel keenly.  The standard remedy is a place-holder backlog:
        ``"auto"`` (default) seeds ``PC_i(0) = V * P_typ * p_i`` so
        users begin ~one duty cycle ahead and batching happens around a
        prefetched buffer instead of around recurring stalls.  Pass a
        float for an explicit seed (seconds), or ``0.0`` for the
        literal paper initialisation.  The ``bench_ablation_ema_init``
        benchmark quantifies the difference.
    typical_p_mj_per_kb:
        The ``P_typ`` used by ``queue_init="auto"``; 1.0 mJ/KB is the
        mean of the paper's Eq. (24) fit over its signal range.
    """

    name = "ema"

    def __init__(
        self,
        n_users: int,
        v_param: float = 1.0,
        tau_s: float = constants.DEFAULT_TAU_S,
        queue_floor_s: float | None = None,
        queue_init: str | float = "auto",
        typical_p_mj_per_kb: float = 1.0,
    ):
        if v_param <= 0:
            raise ConfigurationError("v_param must be positive")
        if queue_floor_s is not None and queue_floor_s > 0:
            raise ConfigurationError("queue_floor_s must be <= 0 when given")
        if isinstance(queue_init, str):
            if queue_init != "auto":
                raise ConfigurationError("queue_init must be 'auto' or a float")
        elif queue_init < 0:
            raise ConfigurationError("queue_init seconds must be >= 0")
        if typical_p_mj_per_kb <= 0:
            raise ConfigurationError("typical_p_mj_per_kb must be positive")
        self.n_users = int(n_users)
        self.v_param = float(v_param)
        self.tau_s = float(tau_s)
        self.queue_floor_s = queue_floor_s
        self.queue_init = queue_init
        self.typical_p_mj_per_kb = float(typical_p_mj_per_kb)
        self.queues = VirtualQueues(self.n_users, self.tau_s)
        self._initialized = np.zeros(self.n_users, dtype=bool)

    # -- scheduling -----------------------------------------------------------

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        if obs.n_users != self.n_users:
            raise ConfigurationError(
                f"observation has {obs.n_users} users, scheduler built for {self.n_users}"
            )
        phi = self._zeros(obs)
        self._seed_queues(obs)
        active_idx = np.flatnonzero(obs.active)
        if active_idx.size == 0 or obs.unit_budget <= 0:
            return phi

        budget = int(obs.unit_budget)
        pc = self.queues.values
        v = self.v_param
        tau = self.tau_s
        delta = obs.delta_kb

        # Per-user transmit cap: link constraint (1), remaining bytes,
        # and the client's receiver window.
        useful_units = np.ceil(obs.sendable_kb / delta).astype(np.int64)
        w_all = np.minimum(obs.link_units, useful_units)

        # Affine transmit cost f(i, phi) = const_i + slope_i * phi and
        # idle cost f(i, 0) = const_i + V * tail_i, with const_i = PC_i * tau.
        # The per-user coefficients are precomputed in one vectorised
        # pass and the DP loop writes into preallocated scratch buffers
        # (plus one value-table row per user) — same arithmetic, zero
        # per-user allocations.  The element-wise operation order
        # mirrors the original expression exactly, so allocations are
        # bit-identical (guarded by tests/core/test_ema.py's
        # brute-force cross-check).
        n_states = budget + 1
        p_act = obs.p_mj_per_kb[active_idx]
        rate_act = obs.rate_kbps[active_idx]
        pc_act = pc[active_idx]
        const_act = pc_act * tau
        idle_act = const_act + v * obs.idle_tail_cost_mj[active_idx]
        with np.errstate(invalid="ignore"):
            # Lanes with non-finite P produce inf/nan slopes here; they
            # take the no-tx branch below and never read the slope.
            slope_act = delta * (v * p_act - pc_act / rate_act)
        # w_eff = 0 marks the pure no-tx users (zero window or
        # non-finite reception power); the backtrack never reads their
        # slope, matching the original inf sentinel.
        w_act = np.minimum(w_all[active_idx], n_states)
        w_eff = np.where((w_act > 0) & np.isfinite(p_act), w_act, 0)
        origin_act = w_eff - 1 - w_eff // 2
        # Python-scalar mirrors of the coefficient vectors: the DP loop
        # reads one scalar per user and list indexing is several times
        # cheaper than NumPy scalar extraction at this call rate.
        w_list = w_eff.tolist()
        origin_list = origin_act.tolist()
        slope_list = slope_act.tolist()
        const_list = const_act.tolist()
        idle_list = idle_act.tolist()

        a_prev = np.zeros(n_states, dtype=float)
        rows = np.empty((active_idx.size, n_states), dtype=float)
        m_idx = np.arange(n_states, dtype=float)
        basis = np.empty(n_states, dtype=float)
        prod = np.empty(n_states, dtype=float)
        filt = np.empty(n_states, dtype=float)
        prod_tail = prod[1:]
        filt_head = filt[:-1]

        for k in range(active_idx.size):
            idle = idle_list[k]
            a_cur = rows[k]
            w = w_list[k]
            if w == 0:
                np.add(a_prev, idle, out=a_cur)  # no-tx only
            else:
                slope = slope_list[k]
                # basis = a_prev - slope * m_idx
                np.multiply(m_idx, slope, out=prod)
                np.subtract(a_prev, prod, out=basis)
                # trailing_window_min(basis, w) = filt[M-1] with filt
                # the size-w window ending *at* M — one origin shift
                # instead of the copy into a prepended-inf buffer.
                _trailing_min_into(basis, w, origin_list[k], filt)
                # tx = const + slope * m_idx + twm, with twm[0] = +inf
                # (empty trailing window) and twm[1:] = filt[:-1].
                np.add(prod, const_list[k], out=prod)
                np.add(prod_tail, filt_head, out=prod_tail)
                prod[0] = np.inf
                # a_cur = min(no_tx, tx) with no_tx = a_prev + idle
                np.add(a_prev, idle, out=a_cur)
                np.minimum(a_cur, prod, out=a_cur)
            a_prev = a_cur

        # Step 15: best total unit count, then backtrack per user.
        m_star = int(np.argmin(a_prev))
        self._backtrack(
            phi, rows, active_idx, slope_list, const_list, idle_list, w_list, m_star
        )
        return phi

    @staticmethod
    def _backtrack(
        phi: np.ndarray,
        rows: np.ndarray,
        active_idx: np.ndarray,
        slope_list: list[float],
        const_list: list[float],
        idle_list: list[float],
        w_list: list[int],
        m_star: int,
    ) -> None:
        """Recover per-user allocations from the DP value tables.

        ``rows`` is the ``(n_active, n_states)`` value-table matrix (one
        row per DP level); the coefficient lists are indexed by level.
        The DP uses "total units *at most* M" semantics (the level-0
        predecessor is identically zero), so leftover capacity at the
        end of the backtrack is simply unused budget.  The argmin over
        ``phi_i`` is re-derived at the chosen capacity point only —
        O(w_i) vectorised work per user instead of storing the full
        ``g(i, M)`` table of Algorithm 2.
        """
        if len(rows) == 0:
            return
        zeros_row = np.zeros_like(rows[0])
        cands_all = np.arange(1, zeros_row.size)
        affine = np.empty(zeros_row.size - 1, dtype=float)
        vals = np.empty(zeros_row.size - 1, dtype=float)
        m = m_star
        for level in range(len(rows) - 1, -1, -1):
            w_here = min(w_list[level], m)
            if w_here <= 0 or not isfinite(slope := slope_list[level]):
                continue  # phi stays 0, m unchanged
            a_prev = rows[level - 1] if level > 0 else zeros_row
            best_val = float(a_prev[m]) + idle_list[level]
            # vals[j] = a_prev[m - (j+1)] + const + slope * (j+1):
            # the fancy index a_prev[m - cands] is a reversed slice.
            v_here = vals[:w_here]
            np.multiply(cands_all[:w_here], slope, out=affine[:w_here])
            np.add(a_prev[m - w_here : m][::-1], const_list[level], out=v_here)
            np.add(v_here, affine[:w_here], out=v_here)
            j = int(v_here.argmin())
            if v_here[j] < best_val - 1e-12:
                best_phi = j + 1
                phi[active_idx[level]] = best_phi
                m -= best_phi

    def _seed_queues(self, obs: SlotObservation) -> None:
        """Apply the place-holder backlog at each user's first active slot."""
        fresh = obs.active & ~self._initialized
        if not np.any(fresh):
            return
        if self.queue_init == "auto":
            seed = self.v_param * self.typical_p_mj_per_kb * obs.rate_kbps
        else:
            seed = np.full(obs.n_users, float(self.queue_init))
        self.queues.values = np.where(fresh, seed, self.queues.values)
        self._initialized |= fresh

    # -- feedback -------------------------------------------------------------

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        """Update the virtual queues with the *delivered* media (Eq. 16)."""
        t = np.asarray(delivered_kb, dtype=float) / obs.rate_kbps
        self.queues.update(t, obs.active)
        if self.queue_floor_s is not None:
            np.maximum(self.queues.values, self.queue_floor_s, out=self.queues.values)
        instr = self.instrumentation
        if instr is not None:
            # Lyapunov policies are diagnosed through their virtual-queue
            # trajectories: publish PC_i(n) after every update.
            pc = self.queues.values
            instr.metrics.gauge("ema.virtual_queues").set(pc.copy())
            instr.metrics.gauge("ema.virtual_queue_max_s").set(float(pc.max()))
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "ema.queues", slot=int(obs.slot), v=self.v_param, pc_s=pc.copy()
                )

    def reset(self) -> None:
        self.queues.reset()
        self._initialized = np.zeros(self.n_users, dtype=bool)
