"""EMA — Energy Minimization Algorithm (paper Section V, Algorithm 2).

EMA minimizes average energy subject to an average rebuffering bound by
the Lyapunov drift-plus-penalty method: each slot it solves

    min  sum_i f(i, phi_i)            (Eq. 22)
    s.t. constraints (1) and (2)

where, with virtual queue ``PC_i`` (Eq. 16) and ``t_i = delta*phi_i/p_i``,

    f(i, phi) = V * E_i(phi) + PC_i * (tau - t_i)
    E_i(phi)  = P(sig_i) * phi * delta     (phi >= 1, Eq. 3)
    E_i(0)    = this slot's incremental tail energy (Eqs. 4-5).

The per-slot problem is a multiple-choice knapsack, which Algorithm 2
solves exactly by dynamic programming over the total unit count ``M``.

Implementation note — sliding-window minimum
--------------------------------------------
For ``phi >= 1`` the cost is *affine* in ``phi``:
``f(i, phi) = PC_i*tau + slope_i*phi`` with
``slope_i = delta * (V*P_i - PC_i/p_i)``.  The DP transition

    a[i][M] = min(a[i-1][M] + f(i,0),
                  min_{1<=phi<=w_i} a[i-1][M-phi] + f(i,phi))

then becomes, for the transmit branch,

    PC_i*tau + slope_i*M + min_{M-w_i <= k <= M-1} (a[i-1][k] - slope_i*k)

— a trailing-window minimum computable in O(M) per user with
:func:`scipy.ndimage.minimum_filter1d`, instead of the naive
O(M * w_i).  The result is *exact*: ``tests/core/test_ema.py``
cross-checks it against the brute-force reference in
:mod:`repro.core.knapsack` on randomized instances.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import minimum_filter1d

from repro import constants
from repro.core.lyapunov import VirtualQueues
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.kernels import registry as kernel_registry
from repro.net.gateway import SlotObservation

__all__ = ["EMAScheduler", "trailing_window_min"]


def trailing_window_min(values: np.ndarray, window: int) -> np.ndarray:
    """``out[M] = min(values[max(0, M-window) : M])`` (empty -> +inf).

    The trailing window *excludes* index ``M`` itself — exactly the
    ``k = M - phi`` range for ``phi in [1, window]``.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    v = np.asarray(values, dtype=float)
    # Shift right so the window ending at M-1 becomes a window ending at M.
    shifted = np.empty_like(v)
    shifted[0] = np.inf
    shifted[1:] = v[:-1]
    w = min(window, v.size)
    # scipy's origin shifts the window start *back* by `origin`; the
    # trailing window [M - w + 1, M] on `shifted` needs the window's
    # right edge at M, i.e. origin = w - 1 - w//2 (= ceil(w/2) - 1,
    # always within scipy's |origin| <= w//2 limit).
    origin = w - 1 - w // 2
    return minimum_filter1d(shifted, size=w, mode="constant", cval=np.inf, origin=origin)


class _EmaScratch:
    """Preallocated buffers for the per-slot DP kernel call.

    The per-user coefficient vectors are sized once for the fleet; the
    state-dimension buffers (value-table rows, DP scratch, the float
    ``arange``) grow monotonically with the largest ``n_states`` seen,
    so the steady-state slot loop performs no allocations.
    """

    def __init__(self, n_users: int):
        self.p = np.empty(n_users, dtype=float)
        self.rate = np.empty(n_users, dtype=float)
        self.pc = np.empty(n_users, dtype=float)
        self.tmp = np.empty(n_users, dtype=float)
        self.f1 = np.empty(n_users, dtype=float)
        self.f2 = np.empty(n_users, dtype=float)
        self.slope = np.empty(n_users, dtype=float)
        self.const = np.empty(n_users, dtype=float)
        self.idle = np.empty(n_users, dtype=float)
        self.useful = np.empty(n_users, dtype=np.int64)
        self.w_eff = np.empty(n_users, dtype=np.int64)
        self.origin = np.empty(n_users, dtype=np.int64)
        self.mask = np.empty(n_users, dtype=bool)
        self._rows_flat = np.empty(0, dtype=float)
        self._fscratch = np.empty(0, dtype=float)
        self._iscratch = np.empty(0, dtype=np.int64)
        self._m_idx = np.empty(0, dtype=float)

    def dp_buffers(self, n_active: int, n_states: int):
        """(rows, m_idx, fscratch, iscratch) views sized for this slot."""
        if self._rows_flat.size < n_active * n_states:
            self._rows_flat = np.empty(n_active * n_states, dtype=float)
        if self._fscratch.size < 4 * n_states:
            self._fscratch = np.empty(4 * n_states, dtype=float)
        if self._iscratch.size < n_states:
            self._iscratch = np.empty(n_states, dtype=np.int64)
        if self._m_idx.size < n_states:
            self._m_idx = np.arange(n_states, dtype=float)
        rows = self._rows_flat[: n_active * n_states].reshape(n_active, n_states)
        return (
            rows,
            self._m_idx[:n_states],
            self._fscratch[: 4 * n_states],
            self._iscratch[:n_states],
        )


class EMAScheduler(Scheduler):
    """Algorithm 2: Lyapunov drift-plus-penalty with exact per-slot DP.

    Parameters
    ----------
    n_users:
        Number of users (fixes the virtual-queue dimension).
    v_param:
        The Lyapunov trade-off weight ``V``: larger values privilege
        energy over rebuffering (Theorem 1: energy gap O(1/V),
        rebuffering O(V)).
    tau_s:
        Slot length, seconds.
    queue_floor_s:
        Optional lower clamp on ``PC_i``.  ``None`` reproduces the
        paper (unbounded negative queues = unlimited prefetch credit);
        a finite floor, e.g. ``-60``, bounds how far ahead EMA will
        push media, mimicking a client buffer cap.
    queue_init:
        Initial virtual-queue value.  Drift-plus-penalty transmits only
        once ``PC_i`` climbs past ``~V * P * p_i``, so zero-initialised
        queues (the literal Eq. 16 reading) stall every user for
        ``O(V)`` seconds *at session start* — an artifact the
        infinite-horizon Theorem 1 averages away but finite sessions
        feel keenly.  The standard remedy is a place-holder backlog:
        ``"auto"`` (default) seeds ``PC_i(0) = V * P_typ * p_i`` so
        users begin ~one duty cycle ahead and batching happens around a
        prefetched buffer instead of around recurring stalls.  Pass a
        float for an explicit seed (seconds), or ``0.0`` for the
        literal paper initialisation.  The ``bench_ablation_ema_init``
        benchmark quantifies the difference.
    typical_p_mj_per_kb:
        The ``P_typ`` used by ``queue_init="auto"``; 1.0 mJ/KB is the
        mean of the paper's Eq. (24) fit over its signal range.
    """

    name = "ema"

    def __init__(
        self,
        n_users: int,
        v_param: float = 1.0,
        tau_s: float = constants.DEFAULT_TAU_S,
        queue_floor_s: float | None = None,
        queue_init: str | float = "auto",
        typical_p_mj_per_kb: float = 1.0,
    ):
        if v_param <= 0:
            raise ConfigurationError("v_param must be positive")
        if queue_floor_s is not None and queue_floor_s > 0:
            raise ConfigurationError("queue_floor_s must be <= 0 when given")
        if isinstance(queue_init, str):
            if queue_init != "auto":
                raise ConfigurationError("queue_init must be 'auto' or a float")
        elif queue_init < 0:
            raise ConfigurationError("queue_init seconds must be >= 0")
        if typical_p_mj_per_kb <= 0:
            raise ConfigurationError("typical_p_mj_per_kb must be positive")
        self.n_users = int(n_users)
        self.v_param = float(v_param)
        self.tau_s = float(tau_s)
        self.queue_floor_s = queue_floor_s
        self.queue_init = queue_init
        self.typical_p_mj_per_kb = float(typical_p_mj_per_kb)
        self.queues = VirtualQueues(self.n_users, self.tau_s)
        self._initialized = np.zeros(self.n_users, dtype=bool)
        self._scratch = _EmaScratch(self.n_users)
        self._kernel = None

    # -- scheduling -----------------------------------------------------------

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        if obs.n_users != self.n_users:
            raise ConfigurationError(
                f"observation has {obs.n_users} users, scheduler built for {self.n_users}"
            )
        phi = self._zeros(obs)
        self._seed_queues(obs)
        active_idx = np.flatnonzero(obs.active)
        if active_idx.size == 0 or obs.unit_budget <= 0:
            return phi

        budget = int(obs.unit_budget)
        pc = self.queues.values
        v = self.v_param
        tau = self.tau_s
        delta = obs.delta_kb
        n_active = int(active_idx.size)
        n_states = budget + 1
        s = self._scratch

        # Affine transmit cost f(i, phi) = const_i + slope_i * phi and
        # idle cost f(i, 0) = const_i + V * tail_i, with const_i = PC_i * tau.
        # The per-user coefficients are gathered into preallocated
        # scratch in one vectorised pass with the element-wise operation
        # order of the original expressions, so the coefficients — and
        # hence the allocations — are bit-identical (guarded by
        # tests/core/test_ema.py's brute-force cross-check).
        p_act = np.take(obs.p_mj_per_kb, active_idx, out=s.p[:n_active])
        rate_act = np.take(obs.rate_kbps, active_idx, out=s.rate[:n_active])
        pc_act = np.take(pc, active_idx, out=s.pc[:n_active])
        const_act = s.const[:n_active]
        np.multiply(pc_act, tau, out=const_act)
        idle_act = s.idle[:n_active]
        np.take(obs.idle_tail_cost_mj, active_idx, out=idle_act)
        np.multiply(idle_act, v, out=idle_act)
        np.add(const_act, idle_act, out=idle_act)
        slope_act = s.slope[:n_active]
        tmp = s.tmp[:n_active]
        with np.errstate(invalid="ignore"):
            # Lanes with non-finite P produce inf/nan slopes here; they
            # take the no-tx branch in the DP and never read the slope.
            np.multiply(p_act, v, out=slope_act)
            np.divide(pc_act, rate_act, out=tmp)
            np.subtract(slope_act, tmp, out=slope_act)
            np.multiply(slope_act, delta, out=slope_act)

        # Per-user transmit cap: link constraint (1), remaining bytes,
        # and the client's receiver window.  w_eff = 0 marks the pure
        # no-tx users (zero window or non-finite reception power); the
        # backtrack never reads their slope.
        sendable = np.take(obs.remaining_kb, active_idx, out=s.f1[:n_active])
        recv = np.take(obs.receivable_kb, active_idx, out=s.f2[:n_active])
        np.minimum(sendable, recv, out=sendable)
        np.divide(sendable, delta, out=sendable)
        np.ceil(sendable, out=sendable)
        useful = s.useful[:n_active]
        np.copyto(useful, sendable, casting="unsafe")
        w_eff = s.w_eff[:n_active]
        np.take(obs.link_units, active_idx, out=w_eff)
        np.minimum(w_eff, useful, out=w_eff)
        np.minimum(w_eff, n_states, out=w_eff)
        mask = s.mask[:n_active]
        np.isfinite(p_act, out=mask)
        np.logical_not(mask, out=mask)
        np.copyto(w_eff, 0, where=mask)
        origin_act = s.origin[:n_active]
        np.floor_divide(w_eff, 2, out=origin_act)
        np.subtract(w_eff, origin_act, out=origin_act)
        np.subtract(origin_act, 1, out=origin_act)

        # One fused kernel call: DP forward pass + trailing-window min
        # + backtrack (Steps 6-15 of Algorithm 2).  The DP uses "total
        # units *at most* M" semantics (the level-0 predecessor is
        # identically zero), so leftover capacity after the backtrack is
        # simply unused budget.
        rows, m_idx, fscratch, iscratch = s.dp_buffers(n_active, n_states)
        if self._kernel is None:
            self._kernel = kernel_registry.resolve("ema_dp")
        self._kernel(
            phi,
            active_idx,
            w_eff,
            origin_act,
            slope_act,
            const_act,
            idle_act,
            rows,
            m_idx,
            fscratch,
            iscratch,
        )
        return phi

    def _seed_queues(self, obs: SlotObservation) -> None:
        """Apply the place-holder backlog at each user's first active slot."""
        fresh = obs.active & ~self._initialized
        if not np.any(fresh):
            return
        if self.queue_init == "auto":
            seed = self.v_param * self.typical_p_mj_per_kb * obs.rate_kbps
        else:
            seed = np.full(obs.n_users, float(self.queue_init))
        self.queues.values = np.where(fresh, seed, self.queues.values)
        self._initialized |= fresh

    # -- feedback -------------------------------------------------------------

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        """Update the virtual queues with the *delivered* media (Eq. 16)."""
        t = np.asarray(delivered_kb, dtype=float) / obs.rate_kbps
        self.queues.update(t, obs.active)
        if self.queue_floor_s is not None:
            np.maximum(self.queues.values, self.queue_floor_s, out=self.queues.values)
        instr = self.instrumentation
        if instr is not None:
            # Lyapunov policies are diagnosed through their virtual-queue
            # trajectories: publish PC_i(n) after every update.
            pc = self.queues.values
            instr.metrics.gauge("ema.virtual_queues").set(pc.copy())
            instr.metrics.gauge("ema.virtual_queue_max_s").set(float(pc.max()))
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "ema.queues", slot=int(obs.slot), v=self.v_param, pc_s=pc.copy()
                )

    def reset(self) -> None:
        self.queues.reset()
        self._initialized = np.zeros(self.n_users, dtype=bool)
        # Re-resolve on next allocate so an ambient use_backend() block
        # entered after construction (the engine's cfg.kernel_backend)
        # governs the kernel choice.
        self._kernel = None

    # -- dynamic session lifecycle --------------------------------------------

    def grow_users(self, n_users: int) -> None:
        """Resize the virtual-queue dimension to the fleet's row count.

        Existing rows keep their ``PC_i`` and seeding flag bit-for-bit;
        new rows come up zeroed/unseeded like a fresh run (they seed at
        their first active slot via :meth:`_seed_queues`).  The dynamic
        engine may also shrink once at run start — before any state has
        accrued — to match its small initial capacity.
        """
        n = int(n_users)
        if n <= 0:
            raise ConfigurationError("n_users must be positive")
        if n == self.n_users:
            return
        keep = min(self.n_users, n)
        values = np.zeros(n, dtype=float)
        values[:keep] = self.queues.values[:keep]
        initialized = np.zeros(n, dtype=bool)
        initialized[:keep] = self._initialized[:keep]
        self.queues = VirtualQueues(n, self.tau_s)
        self.queues.values = values
        self._initialized = initialized
        self._scratch = _EmaScratch(n)
        self.n_users = n

    def release_users(self, rows) -> None:
        """Clear queue state of vacated rows so recycling starts fresh."""
        self.queues.values[rows] = 0.0
        self._initialized[rows] = False
