"""EMA — Energy Minimization Algorithm (paper Section V, Algorithm 2).

EMA minimizes average energy subject to an average rebuffering bound by
the Lyapunov drift-plus-penalty method: each slot it solves

    min  sum_i f(i, phi_i)            (Eq. 22)
    s.t. constraints (1) and (2)

where, with virtual queue ``PC_i`` (Eq. 16) and ``t_i = delta*phi_i/p_i``,

    f(i, phi) = V * E_i(phi) + PC_i * (tau - t_i)
    E_i(phi)  = P(sig_i) * phi * delta     (phi >= 1, Eq. 3)
    E_i(0)    = this slot's incremental tail energy (Eqs. 4-5).

The per-slot problem is a multiple-choice knapsack, which Algorithm 2
solves exactly by dynamic programming over the total unit count ``M``.

Implementation note — sliding-window minimum
--------------------------------------------
For ``phi >= 1`` the cost is *affine* in ``phi``:
``f(i, phi) = PC_i*tau + slope_i*phi`` with
``slope_i = delta * (V*P_i - PC_i/p_i)``.  The DP transition

    a[i][M] = min(a[i-1][M] + f(i,0),
                  min_{1<=phi<=w_i} a[i-1][M-phi] + f(i,phi))

then becomes, for the transmit branch,

    PC_i*tau + slope_i*M + min_{M-w_i <= k <= M-1} (a[i-1][k] - slope_i*k)

— a trailing-window minimum computable in O(M) per user with
:func:`scipy.ndimage.minimum_filter1d`, instead of the naive
O(M * w_i).  The result is *exact*: ``tests/core/test_ema.py``
cross-checks it against the brute-force reference in
:mod:`repro.core.knapsack` on randomized instances.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import minimum_filter1d

from repro import constants
from repro.core.lyapunov import VirtualQueues
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["EMAScheduler", "trailing_window_min"]


def trailing_window_min(values: np.ndarray, window: int) -> np.ndarray:
    """``out[M] = min(values[max(0, M-window) : M])`` (empty -> +inf).

    The trailing window *excludes* index ``M`` itself — exactly the
    ``k = M - phi`` range for ``phi in [1, window]``.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    v = np.asarray(values, dtype=float)
    # Shift right so the window ending at M-1 becomes a window ending at M.
    shifted = np.empty_like(v)
    shifted[0] = np.inf
    shifted[1:] = v[:-1]
    w = min(window, v.size)
    # scipy's origin shifts the window start *back* by `origin`; the
    # trailing window [M - w + 1, M] on `shifted` needs the window's
    # right edge at M, i.e. origin = w - 1 - w//2 (= ceil(w/2) - 1,
    # always within scipy's |origin| <= w//2 limit).
    origin = w - 1 - w // 2
    return minimum_filter1d(shifted, size=w, mode="constant", cval=np.inf, origin=origin)


class EMAScheduler(Scheduler):
    """Algorithm 2: Lyapunov drift-plus-penalty with exact per-slot DP.

    Parameters
    ----------
    n_users:
        Number of users (fixes the virtual-queue dimension).
    v_param:
        The Lyapunov trade-off weight ``V``: larger values privilege
        energy over rebuffering (Theorem 1: energy gap O(1/V),
        rebuffering O(V)).
    tau_s:
        Slot length, seconds.
    queue_floor_s:
        Optional lower clamp on ``PC_i``.  ``None`` reproduces the
        paper (unbounded negative queues = unlimited prefetch credit);
        a finite floor, e.g. ``-60``, bounds how far ahead EMA will
        push media, mimicking a client buffer cap.
    queue_init:
        Initial virtual-queue value.  Drift-plus-penalty transmits only
        once ``PC_i`` climbs past ``~V * P * p_i``, so zero-initialised
        queues (the literal Eq. 16 reading) stall every user for
        ``O(V)`` seconds *at session start* — an artifact the
        infinite-horizon Theorem 1 averages away but finite sessions
        feel keenly.  The standard remedy is a place-holder backlog:
        ``"auto"`` (default) seeds ``PC_i(0) = V * P_typ * p_i`` so
        users begin ~one duty cycle ahead and batching happens around a
        prefetched buffer instead of around recurring stalls.  Pass a
        float for an explicit seed (seconds), or ``0.0`` for the
        literal paper initialisation.  The ``bench_ablation_ema_init``
        benchmark quantifies the difference.
    typical_p_mj_per_kb:
        The ``P_typ`` used by ``queue_init="auto"``; 1.0 mJ/KB is the
        mean of the paper's Eq. (24) fit over its signal range.
    """

    name = "ema"

    def __init__(
        self,
        n_users: int,
        v_param: float = 1.0,
        tau_s: float = constants.DEFAULT_TAU_S,
        queue_floor_s: float | None = None,
        queue_init: str | float = "auto",
        typical_p_mj_per_kb: float = 1.0,
    ):
        if v_param <= 0:
            raise ConfigurationError("v_param must be positive")
        if queue_floor_s is not None and queue_floor_s > 0:
            raise ConfigurationError("queue_floor_s must be <= 0 when given")
        if isinstance(queue_init, str):
            if queue_init != "auto":
                raise ConfigurationError("queue_init must be 'auto' or a float")
        elif queue_init < 0:
            raise ConfigurationError("queue_init seconds must be >= 0")
        if typical_p_mj_per_kb <= 0:
            raise ConfigurationError("typical_p_mj_per_kb must be positive")
        self.n_users = int(n_users)
        self.v_param = float(v_param)
        self.tau_s = float(tau_s)
        self.queue_floor_s = queue_floor_s
        self.queue_init = queue_init
        self.typical_p_mj_per_kb = float(typical_p_mj_per_kb)
        self.queues = VirtualQueues(self.n_users, self.tau_s)
        self._initialized = np.zeros(self.n_users, dtype=bool)

    # -- scheduling -----------------------------------------------------------

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        if obs.n_users != self.n_users:
            raise ConfigurationError(
                f"observation has {obs.n_users} users, scheduler built for {self.n_users}"
            )
        phi = self._zeros(obs)
        self._seed_queues(obs)
        active_idx = np.flatnonzero(obs.active)
        if active_idx.size == 0 or obs.unit_budget <= 0:
            return phi

        budget = int(obs.unit_budget)
        pc = self.queues.values
        v = self.v_param
        tau = self.tau_s
        delta = obs.delta_kb

        # Per-user transmit cap: link constraint (1), remaining bytes,
        # and the client's receiver window.
        useful_units = np.ceil(obs.sendable_kb / delta).astype(np.int64)
        w_all = np.minimum(obs.link_units, useful_units)

        # Affine transmit cost f(i, phi) = const_i + slope_i * phi and
        # idle cost f(i, 0) = const_i + V * tail_i, with const_i = PC_i * tau.
        n_states = budget + 1
        a_prev = np.zeros(n_states, dtype=float)
        rows: list[np.ndarray] = []  # a[i] snapshots for backtracking
        # (user, slope, const = PC_i*tau, idle = f(i,0), w)
        meta: list[tuple[int, float, float, float, int]] = []

        for i in active_idx:
            w = int(w_all[i])
            const = pc[i] * tau
            idle = const + v * obs.idle_tail_cost_mj[i]
            no_tx = a_prev + idle
            if w <= 0 or not np.isfinite(obs.p_mj_per_kb[i]):
                a_cur = no_tx
                slope = np.inf
                w = 0
            else:
                slope = delta * (v * obs.p_mj_per_kb[i] - pc[i] / obs.rate_kbps[i])
                m_idx = np.arange(n_states, dtype=float)
                basis = a_prev - slope * m_idx
                tx = const + slope * m_idx + trailing_window_min(basis, w)
                a_cur = np.minimum(no_tx, tx)
            rows.append(a_cur)
            meta.append((int(i), float(slope), float(const), float(idle), w))
            a_prev = a_cur

        # Step 15: best total unit count, then backtrack per user.
        m_star = int(np.argmin(a_prev))
        self._backtrack(phi, rows, meta, m_star)
        return phi

    @staticmethod
    def _backtrack(
        phi: np.ndarray,
        rows: list[np.ndarray],
        meta: list[tuple[int, float, float, float, int]],
        m_star: int,
    ) -> None:
        """Recover per-user allocations from the DP value tables.

        The DP uses "total units *at most* M" semantics (the level-0
        predecessor is identically zero), so leftover capacity at the
        end of the backtrack is simply unused budget.  The argmin over
        ``phi_i`` is re-derived at the chosen capacity point only —
        O(w_i) vectorised work per user instead of storing the full
        ``g(i, M)`` table of Algorithm 2.
        """
        if not rows:
            return
        zeros_row = np.zeros_like(rows[0])
        m = m_star
        for level in range(len(rows) - 1, -1, -1):
            user, slope, const, idle, w = meta[level]
            a_prev = rows[level - 1] if level > 0 else zeros_row
            best_phi = 0
            best_val = float(a_prev[m]) + idle
            w_here = min(w, m)
            if w_here > 0 and np.isfinite(slope):
                cands = np.arange(1, w_here + 1)
                vals = a_prev[m - cands] + const + slope * cands
                j = int(np.argmin(vals))
                if vals[j] < best_val - 1e-12:
                    best_phi = j + 1
            phi[user] = best_phi
            m -= best_phi

    def _seed_queues(self, obs: SlotObservation) -> None:
        """Apply the place-holder backlog at each user's first active slot."""
        fresh = obs.active & ~self._initialized
        if not np.any(fresh):
            return
        if self.queue_init == "auto":
            seed = self.v_param * self.typical_p_mj_per_kb * obs.rate_kbps
        else:
            seed = np.full(obs.n_users, float(self.queue_init))
        self.queues.values = np.where(fresh, seed, self.queues.values)
        self._initialized |= fresh

    # -- feedback -------------------------------------------------------------

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        """Update the virtual queues with the *delivered* media (Eq. 16)."""
        t = np.asarray(delivered_kb, dtype=float) / obs.rate_kbps
        self.queues.update(t, obs.active)
        if self.queue_floor_s is not None:
            np.maximum(self.queues.values, self.queue_floor_s, out=self.queues.values)
        instr = self.instrumentation
        if instr is not None:
            # Lyapunov policies are diagnosed through their virtual-queue
            # trajectories: publish PC_i(n) after every update.
            pc = self.queues.values
            instr.metrics.gauge("ema.virtual_queues").set(pc.copy())
            instr.metrics.gauge("ema.virtual_queue_max_s").set(float(pc.max()))
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "ema.queues", slot=int(obs.slot), v=self.v_param, pc_s=pc.copy()
                )

    def reset(self) -> None:
        self.queues.reset()
        self._initialized = np.zeros(self.n_users, dtype=bool)
