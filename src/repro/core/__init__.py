"""The paper's primary contribution: the RTM/EM scheduling core.

* :mod:`repro.core.scheduler` — the scheduler interface all policies
  (RTMA, EMA, and every baseline) implement;
* :mod:`repro.core.allocation` — constraint validation for Eqs. (1)-(2);
* :mod:`repro.core.rtma` — Rebuffering Time Minimization Algorithm
  (Algorithm 1) and the Eq. (12) energy-to-signal threshold;
* :mod:`repro.core.ema` — Energy Minimization Algorithm (Algorithm 2):
  Lyapunov drift-plus-penalty with an exact per-slot dynamic program,
  accelerated by a sliding-window-minimum formulation;
* :mod:`repro.core.lyapunov` — virtual queues, drift bounds and the
  Theorem 1 bound computations;
* :mod:`repro.core.knapsack` — brute-force multiple-choice-knapsack
  reference solvers used to verify the fast DP and to measure
  optimality gaps.
"""

from repro.core.scheduler import Scheduler
from repro.core.allocation import check_constraints, clip_to_constraints
from repro.core.rtma import RTMAScheduler, signal_threshold_for_energy_budget
from repro.core.ema import EMAScheduler
from repro.core.lyapunov import (
    VirtualQueues,
    drift_bound_constant,
    theorem1_energy_bound,
    theorem1_rebuffering_bound,
)
from repro.core.knapsack import exact_slot_minimum, brute_force_slot_minimum

__all__ = [
    "Scheduler",
    "check_constraints",
    "clip_to_constraints",
    "RTMAScheduler",
    "signal_threshold_for_energy_budget",
    "EMAScheduler",
    "VirtualQueues",
    "drift_bound_constant",
    "theorem1_energy_bound",
    "theorem1_rebuffering_bound",
    "exact_slot_minimum",
    "brute_force_slot_minimum",
]
