"""Lyapunov optimization machinery shared by EMA and its analysis.

* :class:`VirtualQueues` — the per-user rebuffering-time queues
  ``PC_i(n)`` of Eq. (16), updated from *delivered* media each slot;
* :func:`lyapunov_function` / :func:`drift` — Eq. (17) and the one-slot
  drift it induces;
* :func:`drift_bound_constant` — the constant
  ``B = 0.5 * sum(tau^2 + t_max^2)`` bounding the drift (Eq. 18);
* :func:`theorem1_energy_bound` / :func:`theorem1_rebuffering_bound` —
  the Theorem 1 performance bounds ``E* + B/V`` and ``(B + V E*)/eps``,
  exposing the O(1/V, V) energy/rebuffering trade-off that the
  ``bench_theorem1_bounds`` benchmark verifies empirically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "VirtualQueues",
    "lyapunov_function",
    "drift",
    "drift_bound_constant",
    "theorem1_energy_bound",
    "theorem1_rebuffering_bound",
]


class VirtualQueues:
    """The rebuffering-time virtual queues ``PC_i(n)`` (Eq. 16).

    ``PC_i(n+1) = PC_i(n) + tau - t_i(n)`` while user ``i``'s session
    is in progress.  Negative values mean banked buffer (media
    delivered ahead of real time); positive values accumulate
    rebuffering pressure.
    """

    def __init__(self, n_users: int, tau_s: float):
        if n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        self.n_users = int(n_users)
        self.tau_s = float(tau_s)
        self.values = np.zeros(self.n_users, dtype=float)

    def update(self, delivered_playback_s: np.ndarray, in_session: np.ndarray) -> None:
        """Apply Eq. (16) for one slot.

        Parameters
        ----------
        delivered_playback_s:
            ``t_i(n) = d_i(n) / p_i(n)`` — seconds of playback
            delivered this slot, per user.
        in_session:
            Boolean mask of users whose session is in progress (queues
            of finished / not-yet-arrived users are frozen).
        """
        t = np.asarray(delivered_playback_s, dtype=float)
        mask = np.asarray(in_session, dtype=bool)
        if t.shape != (self.n_users,) or mask.shape != (self.n_users,):
            raise ConfigurationError("per-user arrays have wrong shape")
        if np.any(t < 0):
            raise ConfigurationError("delivered playback must be non-negative")
        self.values = np.where(mask, self.values + self.tau_s - t, self.values)

    def reset(self) -> None:
        self.values = np.zeros(self.n_users, dtype=float)

    def lyapunov(self) -> float:
        """Current Lyapunov function value, Eq. (17)."""
        return lyapunov_function(self.values)


def lyapunov_function(queues: np.ndarray) -> float:
    """Eq. (17): ``L = 0.5 * sum_i PC_i^2``."""
    q = np.asarray(queues, dtype=float)
    return float(0.5 * np.sum(q * q))


def drift(queues_before: np.ndarray, queues_after: np.ndarray) -> float:
    """One-slot Lyapunov drift ``L(n+1) - L(n)``."""
    return lyapunov_function(queues_after) - lyapunov_function(queues_before)


def drift_bound_constant(tau_s: float, t_max_s: float, n_users: int) -> float:
    """The Eq. (18) constant ``B = 0.5 * sum_i (tau^2 + t_max^2)``.

    ``t_max`` is the largest playback duration a single slot's shard
    can carry for any user: ``tau * v_max / p_min`` under constraints
    (1)-(2).
    """
    if tau_s <= 0 or t_max_s <= 0 or n_users <= 0:
        raise ConfigurationError("tau_s, t_max_s, n_users must be positive")
    return 0.5 * n_users * (tau_s**2 + t_max_s**2)


def theorem1_energy_bound(e_star_mj: float, b_const: float, v_param: float) -> float:
    """Theorem 1: ``PE_inf <= E* + B/V``."""
    if v_param <= 0:
        raise ConfigurationError("V must be positive")
    if b_const < 0 or e_star_mj < 0:
        raise ConfigurationError("B and E* must be non-negative")
    return e_star_mj + b_const / v_param


def theorem1_rebuffering_bound(
    e_star_mj: float, b_const: float, v_param: float, epsilon_s: float
) -> float:
    """Theorem 1: ``PC_inf <= (B + V * E*) / eps``."""
    if v_param <= 0 or epsilon_s <= 0:
        raise ConfigurationError("V and eps must be positive")
    if b_const < 0 or e_star_mj < 0:
        raise ConfigurationError("B and E* must be non-negative")
    return (b_const + v_param * e_star_mj) / epsilon_s
