"""Admission control for arriving streaming sessions.

When the dynamic session-lifecycle engine sees a session arrive it
consults an :class:`AdmissionPolicy` before granting the session a
fleet row.  Rejected sessions never receive data units and are
reported separately from admitted load (offered vs admitted split in
summaries), following the admission-control framing of Bethanabhotla
et al. (arXiv:1305.3586) where the scheduler and the admission rule
are co-designed.

Three policies ship:

``accept-all``
    The default; combined with ``all_at_zero`` arrivals it reproduces
    the paper's fixed population exactly.

``capacity-threshold``
    Admit while fewer than ``max_active`` sessions are resident.

``budget-aware``
    Admit while every resident session (including the candidate) can
    still be guaranteed at least ``min_units_per_user`` data units of
    the nominal per-slot budget Φ ≤ τS/δ from constraint (2) — a
    crude but deterministic proxy for "the cell can still feed
    everyone".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionContext",
    "AdmissionPolicy",
    "AcceptAllPolicy",
    "CapacityThresholdPolicy",
    "BudgetAwarePolicy",
    "make_admission_policy",
]

#: Recognised values of ``SimConfig.admission``.
ADMISSION_POLICIES = ("accept-all", "capacity-threshold", "budget-aware")


@dataclass(frozen=True)
class AdmissionContext:
    """Everything a policy may inspect when a session arrives.

    Attributes
    ----------
    slot:
        Arrival slot of the candidate session.
    active_sessions:
        Sessions resident in the cell *before* this decision.
    capacity_rows:
        Current fleet row capacity (grows on demand; informational).
    unit_budget:
        Nominal per-slot data-unit budget ``τS/δ`` (constraint (2)).
    flow:
        The candidate :class:`~repro.net.flows.VideoFlow`.
    """

    slot: int
    active_sessions: int
    capacity_rows: int
    unit_budget: int
    flow: Any


class AdmissionPolicy(abc.ABC):
    """Decide whether an arriving session gets a fleet row."""

    #: Stable policy name (mirrors ``SimConfig.admission`` values).
    name: str = "admission"

    @abc.abstractmethod
    def admit(self, ctx: AdmissionContext) -> bool:
        """``True`` to admit the session described by ``ctx``."""

    def reset(self) -> None:
        """Clear any internal state before a run (default: stateless)."""


class AcceptAllPolicy(AdmissionPolicy):
    """Admit every arriving session (the paper's implicit policy)."""

    name = "accept-all"

    def admit(self, ctx: AdmissionContext) -> bool:
        return True


class CapacityThresholdPolicy(AdmissionPolicy):
    """Admit while fewer than ``max_active`` sessions are resident."""

    name = "capacity-threshold"

    def __init__(self, max_active: int) -> None:
        if max_active <= 0:
            raise ConfigurationError("max_active must be positive")
        self.max_active = int(max_active)

    def admit(self, ctx: AdmissionContext) -> bool:
        return ctx.active_sessions < self.max_active


class BudgetAwarePolicy(AdmissionPolicy):
    """Admit while the Φ budget still covers every resident session.

    A session is admitted iff ``(active + 1) * min_units_per_user``
    fits in the nominal per-slot unit budget, i.e. the cell could give
    each resident session its guaranteed floor every slot even at the
    candidate's arrival instant.
    """

    name = "budget-aware"

    def __init__(self, min_units_per_user: int) -> None:
        if min_units_per_user <= 0:
            raise ConfigurationError("min_units_per_user must be positive")
        self.min_units_per_user = int(min_units_per_user)

    def admit(self, ctx: AdmissionContext) -> bool:
        return (ctx.active_sessions + 1) * self.min_units_per_user <= ctx.unit_budget


def make_admission_policy(cfg) -> AdmissionPolicy:
    """Build the policy described by a :class:`~repro.sim.config.SimConfig`."""
    if cfg.admission == "accept-all":
        return AcceptAllPolicy()
    if cfg.admission == "capacity-threshold":
        return CapacityThresholdPolicy(cfg.admission_max_active)
    if cfg.admission == "budget-aware":
        return BudgetAwarePolicy(cfg.admission_min_units_per_user)
    raise ConfigurationError(f"unknown admission policy {cfg.admission!r}")
