"""Allocation validation and repair for constraints (1) and (2).

The engine validates every scheduler's output with
:func:`check_constraints` (raising
:class:`~repro.errors.ConstraintViolationError` on any violation) so a
buggy policy fails loudly instead of silently inflating its results.
:func:`clip_to_constraints` is the lenient variant used by baseline
implementations that compute a *desired* allocation first and then fit
it to the physical limits in user order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstraintViolationError
from repro.net.gateway import SlotObservation

__all__ = ["check_constraints", "clip_to_constraints"]


def check_constraints(phi: np.ndarray, obs: SlotObservation) -> None:
    """Raise unless ``phi`` satisfies Eqs. (1)-(2) and activity masking.

    Checks, in order:

    * shape and integrality (non-negative integers);
    * per-user link cap ``phi_i <= floor(tau * v(sig_i) / delta)``;
    * BS budget ``sum(phi) <= floor(tau * S(n) / delta)``;
    * inactive users receive nothing.
    """
    phi = np.asarray(phi)
    if phi.shape != (obs.n_users,):
        raise ConstraintViolationError(
            f"allocation shape {phi.shape} != ({obs.n_users},)", obs.slot
        )
    if not np.issubdtype(phi.dtype, np.integer):
        raise ConstraintViolationError(
            f"allocation dtype {phi.dtype} is not integral", obs.slot
        )
    if np.any(phi < 0):
        raise ConstraintViolationError("negative allocation", obs.slot)
    over = phi > obs.link_units
    if np.any(over):
        i = int(np.argmax(over))
        raise ConstraintViolationError(
            f"user {i}: phi={int(phi[i])} exceeds link cap {int(obs.link_units[i])} "
            f"(Eq. 1)",
            obs.slot,
        )
    total = int(phi.sum())
    if total > obs.unit_budget:
        raise ConstraintViolationError(
            f"total {total} units exceeds BS budget {obs.unit_budget} (Eq. 2)",
            obs.slot,
        )
    bad = phi[~obs.active]
    if bad.size and np.any(bad > 0):
        raise ConstraintViolationError("allocation to inactive user", obs.slot)


def clip_to_constraints(desired: np.ndarray, obs: SlotObservation) -> np.ndarray:
    """Fit a desired (possibly fractional/overcommitted) allocation to
    constraints (1)-(2).

    Per-user caps are applied first; then the BS budget is granted in
    ascending user-index order (first-come-first-served), which models
    the naive head-of-line behaviour the paper's *default* strategy
    exhibits and that RTMA's round-based allocation deliberately avoids.
    """
    want = np.floor(np.maximum(np.asarray(desired, dtype=float), 0.0)).astype(np.int64)
    want = np.minimum(want, obs.link_units)
    want[~obs.active] = 0
    # Greedy prefix under the budget: cumulative sum, then truncate the
    # first user that crosses the line and zero the rest.
    cum = np.cumsum(want)
    budget = obs.unit_budget
    phi = want.copy()
    over = cum > budget
    if np.any(over):
        first = int(np.argmax(over))
        prior = int(cum[first - 1]) if first > 0 else 0
        phi[first] = max(budget - prior, 0)
        phi[first + 1 :] = 0
    return phi
