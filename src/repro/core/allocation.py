"""Allocation validation and repair for constraints (1) and (2).

The engine validates every scheduler's output with
:func:`check_constraints` (raising
:class:`~repro.errors.ConstraintViolationError` on any violation) so a
buggy policy fails loudly instead of silently inflating its results.
:func:`clip_to_constraints` is the lenient variant used by baseline
implementations that compute a *desired* allocation first and then fit
it to the physical limits in user order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstraintViolationError
from repro.net.gateway import SlotObservation

__all__ = ["check_constraints", "clip_to_constraints"]


def check_constraints(phi: np.ndarray, obs: SlotObservation) -> None:
    """Raise unless ``phi`` satisfies Eqs. (1)-(2) and activity masking.

    Checks, in order:

    * shape and integrality (non-negative integers);
    * per-user link cap ``phi_i <= floor(tau * v(sig_i) / delta)``;
    * BS budget ``sum(phi) <= floor(tau * S(n) / delta)``;
    * inactive users receive nothing.
    """
    phi = np.asarray(phi)
    if phi.shape != (obs.n_users,):
        raise ConstraintViolationError(
            f"allocation shape {phi.shape} != ({obs.n_users},)", obs.slot
        )
    if not np.issubdtype(phi.dtype, np.integer):
        raise ConstraintViolationError(
            f"allocation dtype {phi.dtype} is not integral", obs.slot
        )
    if np.any(phi < 0):
        raise ConstraintViolationError("negative allocation", obs.slot)
    over = phi > obs.link_units
    if np.any(over):
        i = int(np.argmax(over))
        raise ConstraintViolationError(
            f"user {i}: phi={int(phi[i])} exceeds link cap {int(obs.link_units[i])} "
            f"(Eq. 1)",
            obs.slot,
        )
    run_budgets = getattr(obs, "run_unit_budgets", None)
    if run_budgets is not None:
        # Run-stacked observation: Eq. (2) holds per run segment, not
        # over the aggregate row space (int64 reduceat sums are exact).
        totals = np.add.reduceat(phi, obs.run_offsets[:-1])
        over_run = totals > run_budgets
        if np.any(over_run):
            r = int(np.argmax(over_run))
            raise ConstraintViolationError(
                f"run {r}: total {int(totals[r])} units exceeds BS budget "
                f"{int(run_budgets[r])} (Eq. 2)",
                obs.slot,
            )
    else:
        total = int(phi.sum())
        if total > obs.unit_budget:
            raise ConstraintViolationError(
                f"total {total} units exceeds BS budget {obs.unit_budget} (Eq. 2)",
                obs.slot,
            )
    bad = phi[~obs.active]
    if bad.size and np.any(bad > 0):
        raise ConstraintViolationError("allocation to inactive user", obs.slot)


def clip_to_constraints(desired: np.ndarray, obs: SlotObservation) -> np.ndarray:
    """Fit a desired (possibly fractional/overcommitted) allocation to
    constraints (1)-(2).

    Per-user caps are applied first; then the BS budget is granted in
    ascending user-index order (first-come-first-served), which models
    the naive head-of-line behaviour the paper's *default* strategy
    exhibits and that RTMA's round-based allocation deliberately avoids.
    """
    want = np.floor(np.maximum(np.asarray(desired, dtype=float), 0.0)).astype(np.int64)
    want = np.minimum(want, obs.link_units)
    want[~obs.active] = 0
    run_budgets = getattr(obs, "run_unit_budgets", None)
    if run_budgets is not None:
        return _clip_batch(want, obs.run_offsets, run_budgets)
    # Greedy prefix under the budget: cumulative sum, then truncate the
    # first user that crosses the line and zero the rest.
    cum = np.cumsum(want)
    budget = obs.unit_budget
    phi = want.copy()
    over = cum > budget
    if np.any(over):
        first = int(np.argmax(over))
        prior = int(cum[first - 1]) if first > 0 else 0
        phi[first] = max(budget - prior, 0)
        phi[first + 1 :] = 0
    return phi


def _clip_batch(
    want: np.ndarray, run_offsets: np.ndarray, run_budgets: np.ndarray
) -> np.ndarray:
    """Segmented greedy-prefix clip for run-stacked observations.

    Each run gets the serial treatment against its own budget: per-run
    cumulative sum (int64, so 2-D and 1-D orders agree exactly),
    truncate the first over-budget user, zero the rest of the segment.
    """
    phi = want.copy()
    n_runs = run_budgets.shape[0]
    n_per_run = int(run_offsets[1] - run_offsets[0])
    if want.size == n_runs * n_per_run:
        # Uniform segments (the batch engine's invariant): one 2-D
        # cumsum, then the serial tail-zeroing on offending rows only.
        want2 = want.reshape(n_runs, n_per_run)
        phi2 = phi.reshape(n_runs, n_per_run)
        cum = np.cumsum(want2, axis=1)
        over = cum > run_budgets[:, None]
        for r in np.flatnonzero(over.any(axis=1)):
            first = int(np.argmax(over[r]))
            prior = int(cum[r, first - 1]) if first > 0 else 0
            phi2[r, first] = max(int(run_budgets[r]) - prior, 0)
            phi2[r, first + 1 :] = 0
        return phi
    for r in range(n_runs):
        lo = int(run_offsets[r])
        hi = int(run_offsets[r + 1])
        cum = np.cumsum(want[lo:hi])
        budget = int(run_budgets[r])
        over = cum > budget
        if np.any(over):
            first = int(np.argmax(over))
            prior = int(cum[first - 1]) if first > 0 else 0
            seg = phi[lo:hi]
            seg[first] = max(budget - prior, 0)
            seg[first + 1 :] = 0
    return phi
