"""Client playback buffer: the paper's Eqs. (7)-(8).

Remaining occupancy (Definition 5) evolves as

    ``r(n) = max(r(n-1) - tau, 0) + t(n-1)``            (Eq. 7)

where ``t(n-1) = d(n-1)/p(n-1)`` is the playback duration carried by
the data shard delivered in the previous slot (a shard is usable only
once fully received, hence the one-slot delay).  The slot's rebuffering
time (Definition 6) is

    ``c(n) = max(tau - r(n), 0)``  while playback is unfinished.  (Eq. 8)

:class:`PlaybackBuffer` implements exactly this recursion; the
state-machine wrapper lives in :mod:`repro.media.player`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["PlaybackBuffer"]


class PlaybackBuffer:
    """Remaining-occupancy recursion with optional capacity cap.

    Parameters
    ----------
    tau_s:
        Slot length in seconds.
    capacity_s:
        Optional maximum buffered playback duration.  ``None`` (the
        paper's implicit choice) means unbounded; a finite value makes
        :meth:`headroom_s` meaningful for burst-shaping schedulers
        (EStreamer) and causes excess delivered media to be discarded
        at the cap (the engine avoids this by capping allocations).
    """

    def __init__(self, tau_s: float, capacity_s: float | None = None):
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        if capacity_s is not None and capacity_s <= 0:
            raise ConfigurationError("capacity_s must be positive when given")
        self.tau_s = float(tau_s)
        self.capacity_s = None if capacity_s is None else float(capacity_s)
        #: Remaining occupancy r(n), seconds of playback buffered.
        self.occupancy_s: float = 0.0

    def advance(self, t_prev_s: float) -> float:
        """Apply Eq. (7) at the start of a slot.

        Parameters
        ----------
        t_prev_s:
            Playback duration ``t(n-1)`` delivered during the previous
            slot (seconds).

        Returns
        -------
        The new remaining occupancy ``r(n)`` in seconds.
        """
        if t_prev_s < 0:
            raise ConfigurationError("delivered playback duration must be >= 0")
        occ = max(self.occupancy_s - self.tau_s, 0.0) + t_prev_s
        if self.capacity_s is not None:
            occ = min(occ, self.capacity_s)
        self.occupancy_s = occ
        return occ

    def rebuffering_s(self, playback_active: bool = True) -> float:
        """Apply Eq. (8) for the current slot.

        ``playback_active`` is the paper's ``m_i(n) < M_i`` condition:
        once the user has watched the whole video, stalls no longer
        accrue.
        """
        if not playback_active:
            return 0.0
        return max(self.tau_s - self.occupancy_s, 0.0)

    def headroom_s(self) -> float:
        """Buffered-duration headroom before the capacity cap.

        Infinite for uncapped buffers.
        """
        if self.capacity_s is None:
            return float("inf")
        return max(self.capacity_s - self.occupancy_s, 0.0)

    def reset(self) -> None:
        """Return to the empty initial state (``r(0) = 0``)."""
        self.occupancy_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        cap = "inf" if self.capacity_s is None else f"{self.capacity_s:g}s"
        return f"PlaybackBuffer(occupancy={self.occupancy_s:.3f}s, cap={cap})"
