"""Video session descriptors and bit-rate profiles.

The paper's model (Section III-D) lets the requested data rate
``p_i(n)`` "change over time but remain the same in a slot".  A
:class:`BitrateProfile` supplies ``p_i(n)``; a :class:`VideoSession`
pairs a profile with a total size and derives the total playback time
``M_i`` (Definition 6's ``M_i``) consistently: the session ends when
``size_kb`` bytes' worth of media, consumed at ``p_i(n)`` KB/s of
playback, has been watched.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BitrateProfile",
    "ConstantBitrateProfile",
    "PiecewiseBitrateProfile",
    "VideoSession",
]


class BitrateProfile(abc.ABC):
    """Requested data rate ``p(n)`` in KB/s, constant within a slot."""

    @abc.abstractmethod
    def rate_kbps(self, slot: int) -> float:
        """Rate for slot ``slot`` (>= some positive floor)."""

    @abc.abstractmethod
    def mean_rate_kbps(self) -> float:
        """Long-run average rate, used to size sessions."""


class ConstantBitrateProfile(BitrateProfile):
    """CBR: one rate for the whole session (the common evaluation case)."""

    def __init__(self, rate_kbps: float):
        if rate_kbps <= 0:
            raise ConfigurationError("rate_kbps must be positive")
        self._rate = float(rate_kbps)

    def rate_kbps(self, slot: int) -> float:
        return self._rate

    def mean_rate_kbps(self) -> float:
        return self._rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantBitrateProfile({self._rate} KB/s)"


class PiecewiseBitrateProfile(BitrateProfile):
    """VBR: the rate changes every ``segment_slots`` slots.

    ``rates_kbps`` cycles if the session outlives the supplied segments
    (a session's length depends on delivery, so it cannot be known
    up-front).
    """

    def __init__(self, rates_kbps, segment_slots: int = 30):
        rates = np.asarray(rates_kbps, dtype=float)
        if rates.ndim != 1 or rates.size == 0:
            raise ConfigurationError("rates_kbps must be a non-empty 1-D sequence")
        if np.any(rates <= 0):
            raise ConfigurationError("all rates must be positive")
        if segment_slots <= 0:
            raise ConfigurationError("segment_slots must be positive")
        self.rates = rates
        self.segment_slots = int(segment_slots)

    def rate_kbps(self, slot: int) -> float:
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        seg = (slot // self.segment_slots) % self.rates.size
        return float(self.rates[seg])

    def mean_rate_kbps(self) -> float:
        return float(self.rates.mean())


class VideoSession:
    """One user's video: total bytes plus a bit-rate profile.

    Attributes
    ----------
    size_kb:
        Total media size in KB (paper: uniform in 250..500 MB).
    profile:
        The requested-rate profile ``p(n)``.

    Notes
    -----
    The total playback time ``M`` (Definition 6) for a CBR session is
    simply ``size_kb / rate``; for VBR it depends on which slots end up
    being *played*, so :class:`repro.media.player.StreamingClient`
    tracks remaining media bytes instead of a precomputed ``M``.
    """

    def __init__(self, size_kb: float, profile: BitrateProfile):
        if size_kb <= 0:
            raise ConfigurationError("size_kb must be positive")
        self.size_kb = float(size_kb)
        self.profile = profile

    def rate_kbps(self, slot: int) -> float:
        """Requested data rate ``p(n)`` for slot ``slot``."""
        return self.profile.rate_kbps(slot)

    @property
    def nominal_duration_s(self) -> float:
        """Approximate playback duration at the mean rate (``M_i``)."""
        return self.size_kb / self.profile.mean_rate_kbps()

    def __repr__(self) -> str:  # pragma: no cover
        return f"VideoSession(size={self.size_kb:.0f} KB, {self.profile!r})"
