"""Media/client substrate: video sessions, playback buffers, players.

* :mod:`repro.media.video` — video session descriptors with constant or
  variable bit-rate profiles (``p_i(n)``, paper Section III-D);
* :mod:`repro.media.buffer` — the remaining-occupancy / rebuffering
  recursions of Eqs. (7)-(8);
* :mod:`repro.media.player` — a streaming client combining the two and
  tracking elapsed vs. total playback time (``m_i`` / ``M_i``);
* :mod:`repro.media.fleet` — the struct-of-arrays :class:`ClientFleet`
  driving all clients of a cell in vectorized lockstep (the engine's
  default hot path), bit-identical to the per-object recursion.
"""

from repro.media.video import BitrateProfile, ConstantBitrateProfile, PiecewiseBitrateProfile, VideoSession
from repro.media.buffer import PlaybackBuffer
from repro.media.fleet import ClientFleet, FleetClientView
from repro.media.player import PlayerState, StreamingClient

__all__ = [
    "BitrateProfile",
    "ConstantBitrateProfile",
    "PiecewiseBitrateProfile",
    "VideoSession",
    "PlaybackBuffer",
    "PlayerState",
    "StreamingClient",
    "ClientFleet",
    "FleetClientView",
]
