"""Streaming client: video session + playback buffer + progress tracking.

:class:`StreamingClient` is the per-user endpoint the simulation engine
drives.  Each slot proceeds in two phases:

1. :meth:`begin_slot` — applies the buffer recursion (Eq. 7) using the
   media delivered in the *previous* slot, computes this slot's
   rebuffering time (Eq. 8), and advances the elapsed playback clock
   ``m_i``;
2. :meth:`deliver` — records the data shard ``d_i(n)`` allocated for
   the current slot (usable from the next slot on, per Definition 1).

The client also exposes the feedback signals the baseline schedulers
consume (buffer occupancy for ON-OFF/EStreamer, remaining bytes for
everyone) and the ``needs_data`` / ``playback_complete`` masks the
engine uses to retire finished sessions.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError, SimulationError
from repro.media.buffer import PlaybackBuffer
from repro.media.video import VideoSession

__all__ = ["PlayerState", "StreamingClient"]

#: Tolerance for floating-point playback-time comparisons.
_EPS = 1e-9


class PlayerState(enum.Enum):
    """Coarse player lifecycle for inspection and tests."""

    STARTUP = "startup"  # nothing played yet
    PLAYING = "playing"
    REBUFFERING = "rebuffering"
    FINISHED = "finished"


class StreamingClient:
    """One user's streaming endpoint.

    Parameters
    ----------
    video:
        The session being streamed.
    tau_s:
        Slot length, seconds.
    buffer_capacity_s:
        Optional client buffer cap (seconds of playback).
    """

    def __init__(
        self,
        video: VideoSession,
        tau_s: float,
        buffer_capacity_s: float | None = None,
    ):
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        self.video = video
        self.tau_s = float(tau_s)
        self.buffer = PlaybackBuffer(tau_s, buffer_capacity_s)
        #: Total media bytes received so far (KB).
        self.delivered_kb: float = 0.0
        #: Total playback duration of received media (sum of t_i(n), s).
        self.delivered_playback_s: float = 0.0
        #: Elapsed playback time m_i (s).
        self.elapsed_playback_s: float = 0.0
        #: Cumulative rebuffering time (s).
        self.total_rebuffering_s: float = 0.0
        #: Playback duration delivered in the current slot (pending t(n)).
        self._pending_playback_s: float = 0.0
        self._last_slot_rebuffering: float = 0.0
        self._state = PlayerState.STARTUP

    # -- progress predicates ------------------------------------------------

    @property
    def fully_delivered(self) -> bool:
        """All ``size_kb`` media bytes have been received."""
        return self.delivered_kb >= self.video.size_kb - _EPS

    @property
    def playback_complete(self) -> bool:
        """The user has watched the entire video (``m_i >= M_i``)."""
        return (
            self.fully_delivered
            and self.elapsed_playback_s >= self.delivered_playback_s - _EPS
        )

    @property
    def needs_data(self) -> bool:
        """The gateway still has bytes to push to this user."""
        return not self.fully_delivered

    @property
    def remaining_kb(self) -> float:
        """Media bytes not yet delivered (KB)."""
        return max(self.video.size_kb - self.delivered_kb, 0.0)

    @property
    def buffer_occupancy_s(self) -> float:
        """Current remaining occupancy ``r_i(n)`` in seconds."""
        return self.buffer.occupancy_s

    def receivable_kb(self, slot: int) -> float:
        """Receiver-window: media bytes the client can accept this slot.

        With a finite buffer the client advertises how much more media
        fits: the cap minus what will still occupy the buffer at the
        next slot boundary (current occupancy less one slot of
        playback, plus media already delivered this slot).  Infinite
        for uncapped buffers (the paper's implicit setting).
        """
        if self.buffer.capacity_s is None:
            return float("inf")
        carried = max(self.buffer.occupancy_s - self.tau_s, 0.0)
        headroom_s = self.buffer.capacity_s - carried - self._pending_playback_s
        if headroom_s <= 0.0:
            return 0.0
        return headroom_s * self.video.rate_kbps(slot)

    @property
    def state(self) -> PlayerState:
        return self._state

    # -- per-slot protocol ---------------------------------------------------

    def begin_slot(self, slot: int) -> tuple[float, float]:
        """Start slot ``slot``: apply Eqs. (7)-(8) and play.

        Returns
        -------
        ``(rebuffering_s, played_s)`` for this slot.
        """
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        self.buffer.advance(self._pending_playback_s)
        self._pending_playback_s = 0.0

        if self.playback_complete:
            self._state = PlayerState.FINISHED
            self._last_slot_rebuffering = 0.0
            return 0.0, 0.0

        rebuf = self.buffer.rebuffering_s(playback_active=True)
        played = self.tau_s - rebuf
        # Do not play past the end of the received (== total) media.
        media_left = self.delivered_playback_s - self.elapsed_playback_s
        if played > media_left:
            played = max(media_left, 0.0)
            if self.fully_delivered:
                # Stalling past the end of the video is not rebuffering.
                rebuf = 0.0
        self.elapsed_playback_s += played
        self.total_rebuffering_s += rebuf
        self._last_slot_rebuffering = rebuf

        if self.playback_complete:
            self._state = PlayerState.FINISHED
        elif rebuf > 0:
            self._state = (
                PlayerState.STARTUP
                if self.elapsed_playback_s <= _EPS
                else PlayerState.REBUFFERING
            )
        else:
            self._state = PlayerState.PLAYING
        return rebuf, played

    def deliver(self, data_kb: float, slot: int) -> float:
        """Record a data shard for the current slot.

        The shard is truncated to the session's remaining bytes and to
        the receiver window (finite buffers refuse media they cannot
        hold — TCP flow control, not data loss); the *accepted* amount
        (KB) is returned so the engine can account transmission energy
        for what was actually sent.
        """
        if data_kb < 0:
            raise ConfigurationError("data_kb must be non-negative")
        accepted = min(data_kb, self.remaining_kb, self.receivable_kb(slot))
        if accepted <= 0.0:
            return 0.0
        rate = self.video.rate_kbps(slot)
        if rate <= 0:
            raise SimulationError(f"non-positive bitrate at slot {slot}")
        self.delivered_kb += accepted
        duration = accepted / rate
        self.delivered_playback_s += duration
        self._pending_playback_s += duration
        return accepted

    @property
    def last_slot_rebuffering_s(self) -> float:
        """Rebuffering time ``c_i(n)`` of the most recent slot."""
        return self._last_slot_rebuffering
