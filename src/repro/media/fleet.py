"""Struct-of-arrays client fleet: the vectorized playback hot path.

:class:`ClientFleet` holds the state of every
:class:`~repro.media.player.StreamingClient` in a cell as parallel
NumPy arrays (delivered bytes, buffer occupancy, elapsed playback,
pending playback duration, arrival masks) and applies the paper's
per-slot recursions to all users at once:

* :meth:`ClientFleet.begin_slot` — Eq. (7) buffer advance and Eq. (8)
  rebuffering for every arrived user in a handful of element-wise
  operations;
* :meth:`ClientFleet.deliver` — the data-shard acceptance rule
  (truncate to remaining media and to the receiver window) for the
  whole fleet;
* :meth:`ClientFleet.rates_for_slot` — the per-user required rates
  ``p_i(n)``, evaluated from the sessions' bit-rate profiles without a
  per-user Python loop (CBR and piecewise-VBR profiles are grouped and
  indexed; exotic profiles fall back per-user).

Every element-wise operation mirrors the scalar arithmetic of
:class:`~repro.media.player.StreamingClient` /
:class:`~repro.media.buffer.PlaybackBuffer` *exactly* (same operations
in the same order), so a fleet-path simulation is bit-identical to the
per-object path — the contract `tests/integration/test_fleet_equivalence.py`
enforces.  State arrays are **rebound, never mutated in place**, which
lets :class:`~repro.net.gateway.SlotObservation` snapshots alias them
safely.

:class:`FleetClientView` is a thin per-user window onto the arrays with
the read API of :class:`StreamingClient`, so code written against
individual clients (tests, diagnostics) keeps working.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.kernels import registry as kernel_registry
from repro.media.player import PlayerState
from repro.media.video import (
    ConstantBitrateProfile,
    PiecewiseBitrateProfile,
    VideoSession,
)

__all__ = ["ClientFleet", "FleetClientView"]

#: Tolerance for floating-point playback-time comparisons — must match
#: ``repro.media.player._EPS`` for cross-path bit-identity.
_EPS = 1e-9

#: Arrival slot of vacant fleet rows — far past any horizon, so the
#: begin-slot kernel never touches them.
_FAR_FUTURE = int(2**62)


def _placeholder_video() -> VideoSession:
    """Session occupying a vacant row: 0 remaining bytes, safe 1 KB/s rate.

    The row's ``size_kb`` is forced to 0 (``VideoSession`` itself
    forbids empty videos) so the row is "fully delivered" and inactive;
    the positive constant bitrate keeps the deliver kernel's
    non-positive-rate guard and EMA's rate divisions well-defined.
    """
    return VideoSession(1.0, ConstantBitrateProfile(1.0))


class _VacantRowFlow:
    """Flow-shaped stand-in used to construct an all-vacant fleet."""

    __slots__ = ("user_id", "video", "arrival_slot")

    def __init__(self, user_id: int, video: VideoSession):
        self.user_id = user_id
        self.video = video
        self.arrival_slot = 0


class _RateTable:
    """Vectorized ``p_i(slot)`` lookup across heterogeneous profiles.

    Profiles are grouped once at construction: constant-rate profiles
    contribute a fixed vector, piecewise profiles are padded into a
    matrix indexed by ``(slot // segment_slots) % n_segments``, and any
    other :class:`~repro.media.video.BitrateProfile` subclass is
    evaluated per-user (correct, just not vectorized).  The most recent
    slot's vector is cached — the engine asks for the same slot several
    times (observation, receiver window, delivery).
    """

    def __init__(self, profiles):
        self.n = len(profiles)
        const_idx, const_rates = [], []
        pw_idx, pw_profiles = [], []
        other_idx = []
        for i, prof in enumerate(profiles):
            if type(prof) is ConstantBitrateProfile:
                const_idx.append(i)
                const_rates.append(prof.rate_kbps(0))
            elif type(prof) is PiecewiseBitrateProfile:
                pw_idx.append(i)
                pw_profiles.append(prof)
            else:
                other_idx.append(i)
        self._const_idx = np.array(const_idx, dtype=np.intp)
        self._const_rates = np.array(const_rates, dtype=float)
        self._pw_idx = np.array(pw_idx, dtype=np.intp)
        if pw_idx:
            max_len = max(p.rates.size for p in pw_profiles)
            self._pw_mat = np.zeros((len(pw_idx), max_len), dtype=float)
            for k, p in enumerate(pw_profiles):
                self._pw_mat[k, : p.rates.size] = p.rates
            self._pw_seg = np.array(
                [p.segment_slots for p in pw_profiles], dtype=np.int64
            )
            self._pw_len = np.array(
                [p.rates.size for p in pw_profiles], dtype=np.int64
            )
            self._pw_rows = np.arange(len(pw_idx))
        self._other = [(i, profiles[i]) for i in other_idx]
        self._all_const = not pw_idx and not other_idx
        self._cache_slot: int | None = None
        self._cache: np.ndarray | None = None

    def rates_for_slot(self, slot: int) -> np.ndarray:
        if self._cache_slot == slot:
            return self._cache
        out = np.empty(self.n, dtype=float)
        if self._const_idx.size:
            out[self._const_idx] = self._const_rates
        if self._pw_idx.size:
            seg = (slot // self._pw_seg) % self._pw_len
            out[self._pw_idx] = self._pw_mat[self._pw_rows, seg]
        for i, prof in self._other:
            out[i] = prof.rate_kbps(slot)
        if self._all_const:
            # Constant forever: pin the cache so it is computed once.
            self._cache_slot, self._cache = slot, out
            self.rates_for_slot = lambda _slot: out  # type: ignore[method-assign]
            return out
        self._cache_slot, self._cache = slot, out
        return out


class ClientFleet:
    """All streaming clients of a cell as parallel state arrays.

    Parameters
    ----------
    flows:
        The workload's :class:`~repro.net.flows.VideoFlow` list; fixes
        user order, sessions, and arrival slots.
    tau_s:
        Slot length, seconds.
    buffer_capacity_s:
        Optional client buffer cap (seconds of playback), shared by the
        fleet — matching :class:`~repro.media.player.StreamingClient`'s
        per-client parameter as the engine uses it.
    """

    def __init__(self, flows, tau_s: float, buffer_capacity_s: float | None = None):
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        if buffer_capacity_s is not None and buffer_capacity_s <= 0:
            raise ConfigurationError("buffer_capacity_s must be positive when given")
        n = len(flows)
        if n == 0:
            raise ConfigurationError("fleet needs at least one flow")
        self.n_users = n
        self.tau_s = float(tau_s)
        self.capacity_s = None if buffer_capacity_s is None else float(buffer_capacity_s)
        self.videos = [f.video for f in flows]
        self.size_kb = np.array([f.video.size_kb for f in flows], dtype=float)
        self.arrival_slot = np.array([f.arrival_slot for f in flows], dtype=np.int64)
        self._profiles = [f.video.profile for f in flows]
        self._rates = _RateTable(self._profiles)

        #: Total media bytes received so far (KB).
        self.delivered_kb = np.zeros(n, dtype=float)
        #: Total playback duration of received media (sum of t_i(n), s).
        self.delivered_playback_s = np.zeros(n, dtype=float)
        #: Elapsed playback time m_i (s).
        self.elapsed_playback_s = np.zeros(n, dtype=float)
        #: Cumulative rebuffering time (s).
        self.total_rebuffering_s = np.zeros(n, dtype=float)
        #: Remaining occupancy r_i(n), seconds of playback buffered.
        self.buffer_occupancy_s = np.zeros(n, dtype=float)
        #: Playback duration delivered in the current slot (pending t(n)).
        self.pending_playback_s = np.zeros(n, dtype=float)
        #: Rebuffering time c_i(n) of the most recent slot.
        self.last_slot_rebuffering_s = np.zeros(n, dtype=float)
        self._began = np.zeros(n, dtype=bool)
        self._views: list[FleetClientView] | None = None

        # Double buffers for the slot kernels: a kernel reads the
        # current binding of each mutable array and writes the
        # alternate; on success the bindings swap.  A binding is not
        # overwritten until two kernel calls later, preserving the
        # "rebound, never mutated in place" contract SlotObservation
        # snapshots rely on within their slot.
        self._occ_alt = np.empty(n, dtype=float)
        self._pend_alt = np.empty(n, dtype=float)
        self._began_alt = np.empty(n, dtype=bool)
        self._elapsed_alt = np.empty(n, dtype=float)
        self._total_alt = np.empty(n, dtype=float)
        self._rebuf_alt = np.empty(n, dtype=float)
        self._delivered_alt = np.empty(n, dtype=float)
        self._dplay_alt = np.empty(n, dtype=float)
        self._accepted = np.empty(n, dtype=float)
        self._fscratch = np.empty(2 * n, dtype=float)
        self._bscratch = np.empty(4 * n, dtype=bool)
        self._begin_kernel = None
        self._deliver_kernel = None

    # -- dynamic-population support (growable row space) ----------------------

    @classmethod
    def with_capacity(
        cls, capacity: int, tau_s: float, buffer_capacity_s: float | None = None
    ) -> "ClientFleet":
        """An all-vacant fleet of ``capacity`` rows.

        The dynamic engine starts small and loads rows as sessions are
        admitted (:meth:`load_row`), doubling via :meth:`grow` when the
        free list runs dry.
        """
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        placeholder = _placeholder_video()
        flows = [
            _VacantRowFlow(user_id=i, video=placeholder) for i in range(capacity)
        ]
        fleet = cls(flows, tau_s, buffer_capacity_s)
        for row in range(capacity):
            fleet._clear_row_state(row)
        fleet._rates = _RateTable(fleet._profiles)
        return fleet

    def grow(self, new_capacity: int) -> None:
        """Resize to ``new_capacity`` rows, preserving existing state.

        Existing rows keep every state value bit-for-bit (the common
        prefix is copied, never recomputed); new rows come up vacant.
        All alternate buffers and scratch areas are reallocated in
        lockstep so the kernel double-buffer protocol is unaffected.
        """
        old = self.n_users
        if new_capacity <= old:
            raise ConfigurationError("grow requires new_capacity > current capacity")
        placeholder = _placeholder_video()
        self.videos.extend(placeholder for _ in range(old, new_capacity))
        self._profiles.extend(placeholder.profile for _ in range(old, new_capacity))

        def _resized(arr: np.ndarray) -> np.ndarray:
            out = np.zeros(new_capacity, dtype=arr.dtype)
            out[:old] = arr
            return out

        self.size_kb = _resized(self.size_kb)
        self.arrival_slot = _resized(self.arrival_slot)
        self.delivered_kb = _resized(self.delivered_kb)
        self.delivered_playback_s = _resized(self.delivered_playback_s)
        self.elapsed_playback_s = _resized(self.elapsed_playback_s)
        self.total_rebuffering_s = _resized(self.total_rebuffering_s)
        self.buffer_occupancy_s = _resized(self.buffer_occupancy_s)
        self.pending_playback_s = _resized(self.pending_playback_s)
        self.last_slot_rebuffering_s = _resized(self.last_slot_rebuffering_s)
        self._began = _resized(self._began)
        self._occ_alt = np.empty(new_capacity, dtype=float)
        self._pend_alt = np.empty(new_capacity, dtype=float)
        self._began_alt = np.empty(new_capacity, dtype=bool)
        self._elapsed_alt = np.empty(new_capacity, dtype=float)
        self._total_alt = np.empty(new_capacity, dtype=float)
        self._rebuf_alt = np.empty(new_capacity, dtype=float)
        self._delivered_alt = np.empty(new_capacity, dtype=float)
        self._dplay_alt = np.empty(new_capacity, dtype=float)
        self._accepted = np.empty(new_capacity, dtype=float)
        self._fscratch = np.empty(2 * new_capacity, dtype=float)
        self._bscratch = np.empty(4 * new_capacity, dtype=bool)
        self.n_users = new_capacity
        self._views = None
        for row in range(old, new_capacity):
            self._clear_row_state(row)
        self._rates = _RateTable(self._profiles)

    def load_row(self, row: int, flow) -> None:
        """Bind a freshly admitted session's flow to a vacant row."""
        self.videos[row] = flow.video
        self._profiles[row] = flow.video.profile
        self.size_kb[row] = float(flow.video.size_kb)
        self.arrival_slot[row] = int(flow.arrival_slot)
        self._zero_row_state(row)
        self._rates = _RateTable(self._profiles)

    def clear_row(self, row: int) -> None:
        """Vacate a row (session departed); it can be recycled later."""
        self._clear_row_state(row)
        self._rates = _RateTable(self._profiles)

    def _clear_row_state(self, row: int) -> None:
        placeholder = _placeholder_video()
        self.videos[row] = placeholder
        self._profiles[row] = placeholder.profile
        self.size_kb[row] = 0.0
        self.arrival_slot[row] = _FAR_FUTURE
        self._zero_row_state(row)

    def _zero_row_state(self, row: int) -> None:
        # Row loads/clears happen between slots (before the collect
        # phase aliases the arrays), so in-place writes are safe here.
        self.delivered_kb[row] = 0.0
        self.delivered_playback_s[row] = 0.0
        self.elapsed_playback_s[row] = 0.0
        self.total_rebuffering_s[row] = 0.0
        self.buffer_occupancy_s[row] = 0.0
        self.pending_playback_s[row] = 0.0
        self.last_slot_rebuffering_s[row] = 0.0
        self._began[row] = False

    # -- progress predicates (all shape (n_users,)) --------------------------

    @property
    def fully_delivered(self) -> np.ndarray:
        """All ``size_kb`` media bytes have been received."""
        return self.delivered_kb >= self.size_kb - _EPS

    @property
    def playback_complete(self) -> np.ndarray:
        """Users who have watched their entire video (``m_i >= M_i``)."""
        return self.fully_delivered & (
            self.elapsed_playback_s >= self.delivered_playback_s - _EPS
        )

    @property
    def needs_data(self) -> np.ndarray:
        """The gateway still has bytes to push to these users."""
        return ~self.fully_delivered

    @property
    def remaining_kb(self) -> np.ndarray:
        """Media bytes not yet delivered (KB)."""
        return np.maximum(self.size_kb - self.delivered_kb, 0.0)

    def active_mask(self, slot: int) -> np.ndarray:
        """Session started and still has bytes to receive."""
        return (slot >= self.arrival_slot) & self.needs_data

    def rates_for_slot(self, slot: int) -> np.ndarray:
        """Required data rates ``p_i(slot)`` (KB/s).  Do not mutate."""
        return self._rates.rates_for_slot(slot)

    def receivable_kb(self, slot: int) -> np.ndarray:
        """Receiver windows: media bytes each client can accept this slot."""
        if self.capacity_s is None:
            return np.full(self.n_users, np.inf)
        carried = np.maximum(self.buffer_occupancy_s - self.tau_s, 0.0)
        headroom_s = self.capacity_s - carried - self.pending_playback_s
        return np.where(
            headroom_s <= 0.0, 0.0, headroom_s * self.rates_for_slot(slot)
        )

    # -- allocation-free observation fills (arena path) ----------------------

    def active_mask_into(self, slot: int, out, ftmp, btmp) -> np.ndarray:
        """:meth:`active_mask` written into a preallocated buffer."""
        np.less_equal(self.arrival_slot, slot, out=out)
        np.subtract(self.size_kb, _EPS, out=ftmp)
        np.less(self.delivered_kb, ftmp, out=btmp)
        np.logical_and(out, btmp, out=out)
        return out

    def remaining_into(self, out) -> np.ndarray:
        """:attr:`remaining_kb` written into a preallocated buffer."""
        np.subtract(self.size_kb, self.delivered_kb, out=out)
        np.maximum(out, 0.0, out=out)
        return out

    def playback_complete_into(self, out, ftmp, btmp) -> np.ndarray:
        """:attr:`playback_complete` written into a preallocated buffer."""
        np.subtract(self.size_kb, _EPS, out=ftmp)
        np.greater_equal(self.delivered_kb, ftmp, out=out)
        np.subtract(self.delivered_playback_s, _EPS, out=ftmp)
        np.greater_equal(self.elapsed_playback_s, ftmp, out=btmp)
        np.logical_and(out, btmp, out=out)
        return out

    def receivable_into(self, slot: int, out, btmp) -> np.ndarray:
        """:meth:`receivable_kb` written into a preallocated buffer."""
        if self.capacity_s is None:
            out.fill(np.inf)
            return out
        np.subtract(self.buffer_occupancy_s, self.tau_s, out=out)
        np.maximum(out, 0.0, out=out)
        np.subtract(self.capacity_s, out, out=out)
        np.subtract(out, self.pending_playback_s, out=out)
        np.less_equal(out, 0.0, out=btmp)
        np.multiply(out, self.rates_for_slot(slot), out=out)
        np.copyto(out, 0.0, where=btmp)
        return out

    # -- per-slot protocol ---------------------------------------------------

    def begin_slot(self, slot: int, out: np.ndarray | None = None) -> np.ndarray:
        """Start slot ``slot`` for every arrived user: Eqs. (7)-(8).

        Users whose session has not arrived are untouched (no buffer
        advance, no startup rebuffering); completed users record zero
        rebuffering.  Returns this slot's per-user rebuffering vector —
        a fresh array, or ``out`` filled in place when given (the
        engine passes its result-grid row to stay allocation-free).
        """
        if self._begin_kernel is None:
            self._begin_kernel = kernel_registry.resolve("fleet_begin_slot")
        cap = np.inf if self.capacity_s is None else self.capacity_s
        self._begin_kernel(
            slot,
            self.tau_s,
            cap,
            self.arrival_slot,
            self.size_kb,
            self.delivered_kb,
            self.delivered_playback_s,
            self.buffer_occupancy_s,
            self.pending_playback_s,
            self._began,
            self.elapsed_playback_s,
            self.total_rebuffering_s,
            self._occ_alt,
            self._pend_alt,
            self._began_alt,
            self._elapsed_alt,
            self._total_alt,
            self._rebuf_alt,
            self._fscratch,
            self._bscratch,
        )
        self.buffer_occupancy_s, self._occ_alt = self._occ_alt, self.buffer_occupancy_s
        self.pending_playback_s, self._pend_alt = (
            self._pend_alt,
            self.pending_playback_s,
        )
        self._began, self._began_alt = self._began_alt, self._began
        self.elapsed_playback_s, self._elapsed_alt = (
            self._elapsed_alt,
            self.elapsed_playback_s,
        )
        self.total_rebuffering_s, self._total_alt = (
            self._total_alt,
            self.total_rebuffering_s,
        )
        self.last_slot_rebuffering_s, self._rebuf_alt = (
            self._rebuf_alt,
            self.last_slot_rebuffering_s,
        )
        if out is not None:
            np.copyto(out, self.last_slot_rebuffering_s)
            return out
        return self.last_slot_rebuffering_s.copy()

    def deliver(
        self, offer_kb: np.ndarray, slot: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Record the slot's data shards for the whole fleet.

        Each user's shard is truncated to the session's remaining bytes
        and to the receiver window; the accepted amounts (KB) are
        returned — in a fresh array, or in ``out`` when given.  On a
        non-positive-bitrate error the fleet state is untouched (the
        kernel reports before any state buffer swaps).
        """
        offer = np.asarray(offer_kb, dtype=float)
        if offer.shape != (self.n_users,):
            raise ConfigurationError("offer_kb has wrong shape")
        if np.any(offer < 0):
            raise ConfigurationError("data_kb must be non-negative")
        if self._deliver_kernel is None:
            self._deliver_kernel = kernel_registry.resolve("fleet_deliver")
        cap = np.inf if self.capacity_s is None else self.capacity_s
        accepted = out if out is not None else self._accepted
        err = self._deliver_kernel(
            self.tau_s,
            cap,
            offer,
            np.asarray(self.rates_for_slot(slot), dtype=float),
            self.size_kb,
            self.delivered_kb,
            self.delivered_playback_s,
            self.buffer_occupancy_s,
            self.pending_playback_s,
            self._delivered_alt,
            self._dplay_alt,
            self._pend_alt,
            accepted,
            self._fscratch,
            self._bscratch,
        )
        if err:
            raise SimulationError(f"non-positive bitrate at slot {slot}")
        self.delivered_kb, self._delivered_alt = self._delivered_alt, self.delivered_kb
        self.delivered_playback_s, self._dplay_alt = (
            self._dplay_alt,
            self.delivered_playback_s,
        )
        self.pending_playback_s, self._pend_alt = (
            self._pend_alt,
            self.pending_playback_s,
        )
        if out is not None:
            return out
        return accepted.copy()

    # -- per-user views ------------------------------------------------------

    @property
    def clients(self) -> list["FleetClientView"]:
        """Per-user read views with the ``StreamingClient`` API."""
        if self._views is None:
            self._views = [FleetClientView(self, i) for i in range(self.n_users)]
        return self._views

    def view(self, user: int) -> "FleetClientView":
        return self.clients[user]


class FleetClientView:
    """One user's window onto a :class:`ClientFleet`.

    Mirrors the read API of :class:`~repro.media.player.StreamingClient`
    (progress predicates, occupancy, receiver window, player state) so
    per-client diagnostics and tests work unchanged against the fleet.
    """

    __slots__ = ("_fleet", "_i")

    def __init__(self, fleet: ClientFleet, index: int):
        self._fleet = fleet
        self._i = index

    @property
    def video(self):
        return self._fleet.videos[self._i]

    @property
    def tau_s(self) -> float:
        return self._fleet.tau_s

    @property
    def delivered_kb(self) -> float:
        return float(self._fleet.delivered_kb[self._i])

    @property
    def delivered_playback_s(self) -> float:
        return float(self._fleet.delivered_playback_s[self._i])

    @property
    def elapsed_playback_s(self) -> float:
        return float(self._fleet.elapsed_playback_s[self._i])

    @property
    def total_rebuffering_s(self) -> float:
        return float(self._fleet.total_rebuffering_s[self._i])

    @property
    def fully_delivered(self) -> bool:
        return bool(self._fleet.fully_delivered[self._i])

    @property
    def playback_complete(self) -> bool:
        return bool(self._fleet.playback_complete[self._i])

    @property
    def needs_data(self) -> bool:
        return bool(self._fleet.needs_data[self._i])

    @property
    def remaining_kb(self) -> float:
        return float(self._fleet.remaining_kb[self._i])

    @property
    def buffer_occupancy_s(self) -> float:
        return float(self._fleet.buffer_occupancy_s[self._i])

    @property
    def last_slot_rebuffering_s(self) -> float:
        return float(self._fleet.last_slot_rebuffering_s[self._i])

    def receivable_kb(self, slot: int) -> float:
        fleet = self._fleet
        if fleet.capacity_s is None:
            return float("inf")
        occ = float(fleet.buffer_occupancy_s[self._i])
        carried = max(occ - fleet.tau_s, 0.0)
        headroom_s = (
            fleet.capacity_s - carried - float(fleet.pending_playback_s[self._i])
        )
        if headroom_s <= 0.0:
            return 0.0
        return headroom_s * self.video.rate_kbps(slot)

    @property
    def state(self) -> PlayerState:
        fleet, i = self._fleet, self._i
        if fleet.playback_complete[i]:
            return PlayerState.FINISHED
        if not fleet._began[i]:
            return PlayerState.STARTUP
        if fleet.last_slot_rebuffering_s[i] > 0:
            return (
                PlayerState.STARTUP
                if fleet.elapsed_playback_s[i] <= _EPS
                else PlayerState.REBUFFERING
            )
        return PlayerState.PLAYING

    def __repr__(self) -> str:  # pragma: no cover
        return f"FleetClientView(user={self._i}, {self.state.value})"
