"""Setup shim for legacy editable installs (offline environments whose
setuptools predates PEP 660 wheel-less editables).  All metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
