#!/usr/bin/env python
"""Scenario: evening congestion at one base station.

The intro's motivating workload: a cell fills up over half an hour as
commuters start streaming — sessions arrive staggered, background
(non-video) traffic eats part of the downlink, and the operator wants
smooth playback (RTM mode).  We compare the unmanaged default against
RTMA with a calibrated alpha = 1 energy budget and print both the
aggregate metrics and the experience of the worst-served viewers.

Run:  python examples/evening_cell_congestion.py
"""

import numpy as np

from repro import DefaultScheduler, SimConfig, generate_workload, run_scheduler
from repro.analysis.tables import Table
from repro.net.slicing import PoissonBackground
from repro.sim.runner import calibrate_rtma_threshold
from repro.core.rtma import RTMAScheduler


def main() -> None:
    n_users = 24
    n_slots = 900
    cfg = SimConfig(
        n_users=n_users,
        n_slots=n_slots,
        capacity_kbps=10 * 1024.0,
        video_size_range_kb=(80_000.0, 160_000.0),
        vbr_segments=30,
        buffer_capacity_s=60.0,
        background=PoissonBackground(
            mean_flows=4.0, per_flow_kbps=300.0, horizon_slots=n_slots, rng=3
        ),
        seed=21,
    )

    # Stagger arrivals: a new viewer joins every ~20 s.
    workload = generate_workload(cfg)
    rng = np.random.default_rng(5)
    for i, flow in enumerate(workload.flows):
        flow.arrival_slot = int(i * 20 + rng.integers(0, 10))

    default = run_scheduler(cfg, DefaultScheduler(), workload)
    # RTM mode with a 20% energy headroom over the unmanaged default.
    threshold = calibrate_rtma_threshold(
        cfg, alpha=1.2, workload=workload, iterations=6, calibration_slots=400
    )
    rtma = run_scheduler(cfg, RTMAScheduler(sig_threshold_dbm=threshold), workload)

    table = Table(
        ["scheduler", "avg rebuf (s/slot)", "avg energy (mJ)", "worst viewer (s)", "p90 viewer (s)"],
        formats=[None, ".4f", ".1f", ".1f", ".1f"],
        title="Evening congestion, staggered arrivals + background load",
    )
    for name, res in (("default", default), ("rtma (a=1.2)", rtma)):
        totals = res.per_user_total_rebuffering_s()
        table.add_row(
            [
                name,
                res.pc_session_s,
                res.pe_session_mj,
                float(totals.max()),
                float(np.quantile(totals, 0.9)),
            ]
        )
    print(table.render())
    print(f"\n(RTMA signal threshold calibrated to {threshold:.1f} dBm)")

    worst_default = default.per_user_total_rebuffering_s().argmax()
    print(
        f"Default's worst viewer is user {worst_default} "
        f"(arrived at slot {workload.flows[worst_default].arrival_slot}): "
        "late arrivals starve behind the head-of-line refills."
    )


if __name__ == "__main__":
    main()
