#!/usr/bin/env python
"""Quickstart: run RTMA and the default strategy on one cell.

Builds a 12-user cell with the paper's radio models, runs both
schedulers on the identical workload, and prints the headline metrics:
average rebuffering (Eq. 9), average energy (Eq. 6) and the Jain
fairness profile.

Run:  python examples/quickstart.py
"""

from repro import (
    DefaultScheduler,
    RTMAScheduler,
    SimConfig,
    compare_schedulers,
)
from repro.analysis.tables import summary_table


def main() -> None:
    # A contended cell: 12 users sharing 6 MB/s, ~90 MB videos,
    # variable bitrates, 60 s client buffers.
    cfg = SimConfig(
        n_users=12,
        n_slots=600,
        capacity_kbps=6 * 1024.0,
        video_size_range_kb=(60_000.0, 120_000.0),
        vbr_segments=30,
        buffer_capacity_s=60.0,
        seed=7,
    )

    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(),  # unconstrained energy budget
        },
    )

    table = summary_table(
        results,
        title=f"{cfg.n_users} users, {cfg.capacity_kbps/1024:.0f} MB/s cell",
    )
    print(table.render())

    reduction = 1 - results["rtma"].pc_session_s / results["default"].pc_session_s
    print(f"\nRTMA cuts average rebuffering by {reduction:.0%} on this workload.")


if __name__ == "__main__":
    main()
