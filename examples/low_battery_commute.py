#!/usr/bin/env python
"""Scenario: low-battery commuters — the EM (energy minimization) mode.

A train of commuters streams through alternating good/bad coverage
(fast signal swings as the train moves).  Their batteries matter more
than a few hundred milliseconds of buffering, so the operator flips
the gateway into EM mode: EMA with V calibrated so rebuffering stays
within beta = 1.2x of the default strategy's.

The script prints the energy bill under four policies and translates
EMA's savings into streaming-hours of a typical phone battery.

Run:  python examples/low_battery_commute.py
"""

from repro import (
    DefaultScheduler,
    EMAScheduler,
    EStreamerScheduler,
    SalsaScheduler,
    SimConfig,
    compare_schedulers,
    generate_workload,
)
from repro.analysis.tables import Table
from repro.radio.signal import RandomWalkSignalModel
from repro.sim.runner import calibrate_ema_v_to_reference

#: A common smartphone battery: 3.85 V x 3000 mAh in millijoules.
BATTERY_MJ = 3.85 * 3000 * 3.6 * 1000


def main() -> None:
    cfg = SimConfig(
        n_users=16,
        n_slots=900,
        capacity_kbps=8 * 1024.0,
        video_size_range_kb=(80_000.0, 160_000.0),
        vbr_segments=30,
        buffer_capacity_s=60.0,
        signal_model=RandomWalkSignalModel(alpha=0.9, sigma_dbm=8.0),
        seed=33,
    )
    wl = generate_workload(cfg)

    v = calibrate_ema_v_to_reference(
        cfg, DefaultScheduler, beta=1.2, workload=wl,
        iterations=8, calibration_slots=400,
    )
    print(f"EM mode: calibrated V = {v:.4g} (beta = 1.2)\n")

    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "salsa": SalsaScheduler(),
            "estreamer": EStreamerScheduler(),
            "ema": EMAScheduler(cfg.n_users, v_param=v),
        },
        workload=wl,
    )

    table = Table(
        ["scheduler", "energy (mJ/slot)", "tail share", "rebuf (s/slot)", "battery-hours"],
        formats=[None, ".1f", ".0%", ".4f", ".1f"],
        title="EM mode on a commuter cell (random-walk signal)",
    )
    for name, res in results.items():
        s = res.summary()
        hours = BATTERY_MJ / (s.pe_session_mj * 3600.0)
        table.add_row(
            [
                name,
                s.pe_session_mj,
                s.pe_tail_mj / max(s.pe_mj, 1e-9),
                s.pc_session_s,
                hours,
            ]
        )
    print(table.render())

    saving = 1 - results["ema"].pe_session_mj / results["default"].pe_session_mj
    print(f"\nEMA cuts radio energy by {saving:.0%} at a bounded rebuffering cost.")


if __name__ == "__main__":
    main()
